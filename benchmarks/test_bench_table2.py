"""Benchmarks for Table II (execution time: DP-hSRC vs optimal).

The kernel benchmarks time the two algorithms on the same setting-I
instance — the exact comparison each cell of Table II reports.  The
series test prints the fast-mode table and asserts the paper's headline
asymmetry: DP-hSRC runs orders of magnitude faster than the exact
optimal computation at every point.
"""

from repro.experiments import table2
from repro.mechanisms.dp_hsrc import DPHSRCAuction
from repro.mechanisms.optimal import optimal_total_payment


def test_bench_dp_hsrc_cell(benchmark, setting1_market):
    """One DP-hSRC cell of Table II (full distribution computation)."""
    instance, _pool = setting1_market
    pmf = benchmark(DPHSRCAuction(epsilon=0.1).price_pmf, instance)
    assert pmf.support_size > 0


def test_bench_optimal_cell(benchmark, setting1_market):
    """One optimal cell of Table II (pruned exact computation)."""
    instance, _pool = setting1_market
    result = benchmark.pedantic(
        optimal_total_payment, args=(instance,),
        kwargs={"time_limit_per_solve": 60.0},
        rounds=1, iterations=1,
    )
    assert result.total_payment > 0


def test_series_table2_fast(benchmark):
    """Regenerate Table II (fast mode) and check the runtime asymmetry."""
    result = benchmark.pedantic(lambda: table2.run(fast=True, seed=0), rounds=1, iterations=1)
    print()
    print(result.to_table(precision=4))
    for row in result.rows:
        dp_time = row[result.headers.index("dp_hsrc time (s)")]
        opt_time = row[result.headers.index("optimal time (s)")]
        assert dp_time < opt_time
