"""Ablation benchmark: price-grid resolution (Theorem 6's |P| term).

Times the DP-hSRC distribution computation at coarse and fine grids —
demonstrating the Theorem 5 claim that runtime is essentially independent
of |P| — and prints the fast-mode payment/leakage table.
"""

import numpy as np
import pytest

from repro.auction.instance import AuctionInstance
from repro.experiments import ablation_grid
from repro.mechanisms.dp_hsrc import DPHSRCAuction


def _regrid(instance, step):
    low, high = 35.0, 60.0
    n_points = int(round((high - low) / step)) + 1
    return AuctionInstance(
        bids=instance.bids,
        quality=instance.quality,
        demands=instance.demands,
        price_grid=np.round(low + step * np.arange(n_points), 10),
        c_min=instance.c_min,
        c_max=instance.c_max,
    )


@pytest.mark.parametrize("step", [1.0, 0.1, 0.02])
def test_bench_pmf_vs_grid_resolution(benchmark, setting1_market, step):
    instance, _pool = setting1_market
    regridded = _regrid(instance, step)
    pmf = benchmark(DPHSRCAuction(epsilon=0.1).price_pmf, regridded)
    assert pmf.support_size > 0


def test_series_ablation_grid_fast(benchmark):
    result = benchmark.pedantic(lambda: ablation_grid.run(fast=True, seed=0), rounds=1, iterations=1)
    print()
    print(result.to_table(precision=6))
    # Steps are swept coarse→fine, so support sizes must be non-decreasing.
    supports = result.column("|P|")
    assert supports == sorted(supports)
