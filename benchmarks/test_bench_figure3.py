"""Benchmarks for Figure 3 (total payment vs N at scale, setting III).

These run at N ≈ 1100, K = 200 — the scale where the paper (and we)
declare the exact benchmark infeasible, so only the private mechanisms
are benchmarked.  This is the stress benchmark for the grouped
winner-set computation (Theorem 5's |P|-independence).
"""

from repro.experiments import figure3
from repro.mechanisms.baseline import BaselineAuction
from repro.mechanisms.dp_hsrc import DPHSRCAuction


def test_bench_dp_hsrc_pmf_at_scale(benchmark, setting3_market):
    instance, _pool = setting3_market
    pmf = benchmark.pedantic(
        DPHSRCAuction(epsilon=0.1).price_pmf, args=(instance,),
        rounds=3, iterations=1,
    )
    assert pmf.support_size > 0


def test_bench_baseline_pmf_at_scale(benchmark, setting3_market):
    instance, _pool = setting3_market
    pmf = benchmark.pedantic(
        BaselineAuction(epsilon=0.1).price_pmf, args=(instance,),
        rounds=3, iterations=1,
    )
    assert pmf.support_size > 0


def test_series_figure3_fast(benchmark):
    """Regenerate the Figure 3 series (fast mode) and check its shape."""
    result = benchmark.pedantic(lambda: figure3.run(fast=True, seed=0, n_price_samples=1000), rounds=1, iterations=1)
    print()
    print(result.to_table())
    for row in result.rows:
        dp = row[result.headers.index("dp_hsrc mean")]
        base = row[result.headers.index("baseline mean")]
        assert dp <= base * 1.05
