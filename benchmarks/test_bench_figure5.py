"""Benchmarks for Figure 5 (payment vs privacy-leakage trade-off).

Kernels: the ε-reweighting of a computed PMF (the sweep's inner loop) and
a single KL-divergence leakage evaluation.  The series test regenerates
the trade-off curve in fast mode and checks its two monotone trends.
"""

from repro.experiments import figure5
from repro.mechanisms.dp_hsrc import DPHSRCAuction, reweight_pmf
from repro.privacy.leakage import pmf_kl_divergence
from repro.workloads.generator import matched_neighbor
from repro.workloads.settings import SETTING_I


def test_bench_reweight_pmf(benchmark, setting1_market):
    instance, _pool = setting1_market
    base = DPHSRCAuction(epsilon=1.0).price_pmf(instance)
    out = benchmark(reweight_pmf, base, instance, 45.0)
    assert out.support_size == base.support_size


def test_bench_kl_leakage(benchmark, setting1_market):
    instance, _pool = setting1_market
    auction = DPHSRCAuction(epsilon=1.0)
    base = auction.price_pmf(instance)
    neighbor_pmf = auction.price_pmf(
        matched_neighbor(instance, SETTING_I, worker=0, seed=0)
    )
    leakage = benchmark(pmf_kl_divergence, base, neighbor_pmf)
    assert leakage >= 0.0


def test_series_figure5_fast(benchmark):
    """Regenerate the Figure 5 series (fast mode) and check the trade-off."""
    result = benchmark.pedantic(lambda: figure5.run(fast=True, seed=0), rounds=1, iterations=1)
    print()
    print(result.to_table(precision=6))
    payments = result.column("avg total payment")
    leakages = result.column("mean KL leakage")
    assert payments[-1] <= payments[0]  # payment falls with epsilon
    assert leakages[-1] >= leakages[0]  # leakage rises with epsilon
