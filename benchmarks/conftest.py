"""Shared fixtures for the benchmark suite.

Each fixture draws one representative instance of a Table I setting at
the midpoint of the corresponding figure's sweep.  Session-scoped so the
(sometimes expensive) generation happens once per pytest run.

Running the benchmarks::

    pytest benchmarks/ --benchmark-only

Each ``test_bench_*`` module carries the kernel benchmarks for one paper
artifact; the ``test_series_*`` test in each module regenerates the
artifact's numeric series in fast mode and prints it (full-scale series:
``python -m repro <experiment>``).
"""

from __future__ import annotations

import pytest

from repro.workloads.generator import generate_instance
from repro.workloads.settings import SETTING_I, SETTING_II, SETTING_III, SETTING_IV


@pytest.fixture(scope="session")
def setting1_market():
    """Setting I at the sweep midpoint (N=110, K=30) — Figures 1, Table II."""
    return generate_instance(SETTING_I, seed=0, n_workers=110)


@pytest.fixture(scope="session")
def setting2_market():
    """Setting II at the sweep midpoint (N=120, K=35) — Figure 2."""
    return generate_instance(SETTING_II, seed=0, n_tasks=35)


@pytest.fixture(scope="session")
def setting3_market():
    """Setting III at the sweep midpoint (N=1100, K=200) — Figure 3."""
    return generate_instance(SETTING_III, seed=0, n_workers=1100)


@pytest.fixture(scope="session")
def setting4_market():
    """Setting IV at the sweep midpoint (N=1000, K=350) — Figure 4."""
    return generate_instance(SETTING_IV, seed=0, n_tasks=350)
