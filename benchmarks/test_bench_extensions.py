"""Benchmarks for the extension mechanisms and experiments.

* threshold-payment auction (selection + N critical-payment re-runs),
* permute-and-flip sampling vs exponential-mechanism PMF construction,
* the fast-mode extension experiment series.
"""

import numpy as np

from repro.cli import run_experiment
from repro.mechanisms.dp_hsrc import DPHSRCAuction, payment_score_sensitivity
from repro.mechanisms.threshold_auction import ThresholdPaymentAuction
from repro.privacy.selection import permute_and_flip_sample


def test_bench_threshold_auction(benchmark, setting1_market):
    instance, _pool = setting1_market
    outcome = benchmark.pedantic(
        ThresholdPaymentAuction().run, args=(instance,), rounds=2, iterations=1
    )
    assert outcome.n_winners > 0


def test_bench_permute_flip_sample(benchmark, setting1_market):
    instance, _pool = setting1_market
    base = DPHSRCAuction(epsilon=1.0).price_pmf(instance)
    scores = -base.total_payments
    sens = payment_score_sensitivity(instance)
    rng = np.random.default_rng(0)
    idx = benchmark(permute_and_flip_sample, scores, 0.1, sens, rng)
    assert 0 <= idx < base.support_size


def test_series_price_of_privacy_fast(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("price_of_privacy", fast=True), rounds=1, iterations=1)
    print()
    print(result.to_table())
    assert all(e <= 0.1 + 1e-9 for e in result.column("dp empirical eps"))


def test_series_dp_variants_fast(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("dp_variants", fast=True), rounds=1, iterations=1)
    print()
    print(result.to_table())


def test_series_approximation_fast(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("approximation", fast=True), rounds=1, iterations=1)
    print()
    print(result.to_table())
    for row in result.rows:
        assert row[result.headers.index("dp_hsrc ratio")] >= 0.95


def test_series_accuracy_fast(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("accuracy", fast=True), rounds=1, iterations=1)
    print()
    print(result.to_table())


def test_series_ablation_sensitivity_fast(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("ablation_sensitivity", fast=True), rounds=1, iterations=1)
    print()
    print(result.to_table())
    for row in result.rows:
        if row[result.headers.index("factor x N*c_max")] >= 1.0:
            assert row[result.headers.index("guarantee")] == "OK"


def test_series_geo_workload_fast(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("geo_workload", fast=True), rounds=1, iterations=1)
    print()
    print(result.to_table())
    for row in result.rows:
        geo = row[result.headers.index("dp_hsrc geo E[R]")]
        base_geo = row[result.headers.index("baseline geo E[R]")]
        assert geo <= base_geo * 1.05


def test_series_budget_schedule_fast(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("budget_schedule", fast=True), rounds=1, iterations=1)
    print()
    print(result.to_table(precision=5))
