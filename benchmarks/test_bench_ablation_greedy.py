"""Ablation benchmark: winner-selection rules (DESIGN.md §4).

Times the adaptive truncated-gain greedy, the static-order rule, and the
exact solver on identical covering problems, and prints the fast-mode
cover-size comparison.
"""

import pytest

from repro.coverage.exact import solve_exact
from repro.coverage.greedy import greedy_cover, static_order_cover
from repro.experiments import ablation_greedy
from repro.mechanisms.price_set import feasible_price_set, group_prices_by_candidates


@pytest.fixture(scope="module")
def cover_problem(setting1_market):
    instance, _pool = setting1_market
    prices = feasible_price_set(instance)
    return group_prices_by_candidates(instance, prices)[0].problem


def test_bench_adaptive_greedy(benchmark, cover_problem):
    result = benchmark(greedy_cover, cover_problem)
    assert result.size > 0


def test_bench_static_order(benchmark, cover_problem):
    result = benchmark(static_order_cover, cover_problem)
    assert result.size > 0


def test_bench_exact(benchmark, cover_problem):
    result = benchmark.pedantic(
        solve_exact, args=(cover_problem,), kwargs={"time_limit": 60.0},
        rounds=1, iterations=1,
    )
    assert result.size > 0


def test_series_ablation_greedy_fast(benchmark):
    result = benchmark.pedantic(lambda: ablation_greedy.run(fast=True, seed=0), rounds=1, iterations=1)
    print()
    print(result.to_table())
    adaptive = result.column("adaptive/opt")
    static = result.column("static/opt")
    assert sum(adaptive) <= sum(static) + 1e-9
