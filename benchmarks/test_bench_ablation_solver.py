"""Ablation benchmark: exact backends (HiGHS MILP vs own branch-and-bound).

Cross-validates the GUROBI substitutes and times them on a moderate
covering problem, plus the fast-mode agreement table.
"""

import pytest

from repro.coverage.exact import solve_exact
from repro.experiments import ablation_solver
from repro.mechanisms.price_set import feasible_price_set, group_prices_by_candidates
from repro.workloads.generator import generate_instance
from repro.workloads.settings import SETTING_I


@pytest.fixture(scope="module")
def medium_problem():
    instance, _pool = generate_instance(SETTING_I, seed=5, n_workers=60)
    prices = feasible_price_set(instance)
    return group_prices_by_candidates(instance, prices)[0].problem


def test_bench_milp_backend(benchmark, medium_problem):
    result = benchmark.pedantic(
        solve_exact, args=(medium_problem,),
        kwargs={"backend": "milp", "time_limit": 60.0},
        rounds=1, iterations=1,
    )
    assert result.size > 0


def test_bench_bnb_backend(benchmark, medium_problem):
    result = benchmark.pedantic(
        solve_exact, args=(medium_problem,),
        kwargs={"backend": "bnb", "node_limit": 500_000},
        rounds=1, iterations=1,
    )
    assert result.size > 0


def test_series_ablation_solver_fast(benchmark):
    result = benchmark.pedantic(lambda: ablation_solver.run(fast=True, seed=0), rounds=1, iterations=1)
    print()
    print(result.to_table())
    assert all(row[2] == row[3] for row in result.rows)  # identical optima
