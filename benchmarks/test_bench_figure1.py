"""Benchmarks for Figure 1 (total payment vs N, setting I).

Kernels: the three mechanisms' full price-distribution computations on a
setting-I instance at the sweep midpoint.  The series test regenerates
the figure's numeric rows (fast mode) and checks the paper's ordering:
optimal ≤ DP-hSRC ≪ baseline.
"""

import pytest

from repro.experiments import figure1
from repro.mechanisms.baseline import BaselineAuction
from repro.mechanisms.dp_hsrc import DPHSRCAuction
from repro.mechanisms.optimal import optimal_total_payment


def test_bench_dp_hsrc_pmf(benchmark, setting1_market):
    instance, _pool = setting1_market
    pmf = benchmark(DPHSRCAuction(epsilon=0.1).price_pmf, instance)
    assert pmf.support_size > 0


def test_bench_baseline_pmf(benchmark, setting1_market):
    instance, _pool = setting1_market
    pmf = benchmark(BaselineAuction(epsilon=0.1).price_pmf, instance)
    assert pmf.support_size > 0


def test_bench_optimal(benchmark, setting1_market):
    instance, _pool = setting1_market
    result = benchmark.pedantic(
        optimal_total_payment, args=(instance,),
        kwargs={"time_limit_per_solve": 60.0},
        rounds=1, iterations=1,
    )
    assert result.total_payment > 0


def test_series_figure1_fast(benchmark):
    """Regenerate the Figure 1 series (fast mode) and check its shape."""
    result = benchmark.pedantic(lambda: figure1.run(fast=True, seed=0), rounds=1, iterations=1)
    print()
    print(result.to_table())
    for row in result.rows:
        opt = row[result.headers.index("optimal mean")]
        dp = row[result.headers.index("dp_hsrc mean")]
        base = row[result.headers.index("baseline mean")]
        assert opt <= dp * 1.001 <= base * 1.05
