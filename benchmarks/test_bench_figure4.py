"""Benchmarks for Figure 4 (total payment vs K at scale, setting IV)."""

from repro.experiments import figure4
from repro.mechanisms.baseline import BaselineAuction
from repro.mechanisms.dp_hsrc import DPHSRCAuction


def test_bench_dp_hsrc_pmf_at_scale(benchmark, setting4_market):
    instance, _pool = setting4_market
    pmf = benchmark.pedantic(
        DPHSRCAuction(epsilon=0.1).price_pmf, args=(instance,),
        rounds=3, iterations=1,
    )
    assert pmf.support_size > 0


def test_bench_baseline_pmf_at_scale(benchmark, setting4_market):
    instance, _pool = setting4_market
    pmf = benchmark.pedantic(
        BaselineAuction(epsilon=0.1).price_pmf, args=(instance,),
        rounds=3, iterations=1,
    )
    assert pmf.support_size > 0


def test_series_figure4_fast(benchmark):
    """Regenerate the Figure 4 series (fast mode) and check its shape."""
    result = benchmark.pedantic(lambda: figure4.run(fast=True, seed=0, n_price_samples=1000), rounds=1, iterations=1)
    print()
    print(result.to_table())
    for row in result.rows:
        dp = row[result.headers.index("dp_hsrc mean")]
        base = row[result.headers.index("baseline mean")]
        assert dp <= base * 1.05
