"""Tests for repro.obs.export — OpenMetrics exposition and its parser."""

import math

import pytest

from repro.exceptions import ValidationError
from repro.obs import (
    MetricsRecorder,
    parse_openmetrics,
    render_metrics_json,
    render_openmetrics,
)
from repro.privacy.budget import InMemoryBudgetStore


def _populated_recorder() -> MetricsRecorder:
    rec = MetricsRecorder()
    with rec.span("price_set", "demo"):
        pass
    with rec.span("exp_mech", "demo"):
        pass
    with rec.span("exp_mech", "demo-2"):
        pass
    rec.count("auction.runs", 3)
    rec.count("greedy.iterations", 41)
    for v in (-2.0, 0.0, 0.5, 1.5, 2.5, 300.0):
        rec.observe("greedy.residual_demand", v)
    rec.ledger.record("dp-hsrc", epsilon=0.2, sensitivity=30.0)
    rec.ledger.record("dp-hsrc", epsilon=0.3, sensitivity=30.0, parallel=True)
    return rec


def _populated_store() -> InMemoryBudgetStore:
    store = InMemoryBudgetStore(limit=5.0)
    store.charge("acme", "default", mechanism="dp-hsrc", epsilon=1.0)
    store.charge("acme", "default", mechanism="dp-hsrc", epsilon=0.5)
    store.charge("globex", "alice", mechanism="dp-hsrc", epsilon=2.0)
    return store


class TestRenderOpenmetrics:
    def test_output_passes_the_strict_parser(self):
        text = render_openmetrics(_populated_recorder())
        families = parse_openmetrics(text)
        assert families["repro_auction_runs"]["type"] == "counter"
        assert families["repro_span_seconds"]["type"] == "counter"
        assert families["repro_greedy_residual_demand"]["type"] == "histogram"
        assert families["repro_privacy_epsilon"]["type"] == "gauge"

    def test_counter_values_and_suffix(self):
        families = parse_openmetrics(render_openmetrics(_populated_recorder()))
        [(name, labels, value)] = families["repro_auction_runs"]["samples"]
        assert name == "repro_auction_runs_total"
        assert labels == {}
        assert value == 3

    def test_span_kind_labels(self):
        families = parse_openmetrics(render_openmetrics(_populated_recorder()))
        counts = {
            s[1]["kind"]: s[2] for s in families["repro_spans"]["samples"]
        }
        assert counts == {"exp_mech": 2, "price_set": 1}
        seconds = {
            s[1]["kind"]: s[2] for s in families["repro_span_seconds"]["samples"]
        }
        assert all(v >= 0 for v in seconds.values())

    def test_histogram_buckets_cumulative_and_terminal(self):
        families = parse_openmetrics(render_openmetrics(_populated_recorder()))
        samples = families["repro_greedy_residual_demand"]["samples"]
        buckets = [s for s in samples if s[0].endswith("_bucket")]
        count = next(s[2] for s in samples if s[0].endswith("_count"))
        total = next(s[2] for s in samples if s[0].endswith("_sum"))
        assert count == 6
        assert total == pytest.approx(302.5)
        assert buckets[-1][1]["le"] == "+Inf"
        assert buckets[-1][2] == count
        values = [b[2] for b in buckets]
        assert values == sorted(values)
        # The negative observation lands under a negative le bound and
        # the zero observation under le="0".
        les = [b[1]["le"] for b in buckets]
        assert any(le.startswith("-") for le in les)
        assert "0" in les

    def test_ledger_epsilon_gauges(self):
        families = parse_openmetrics(render_openmetrics(_populated_recorder()))
        eps = {
            s[1]["composition"]: s[2]
            for s in families["repro_privacy_epsilon"]["samples"]
        }
        assert eps["sequential"] == pytest.approx(0.2)
        assert eps["parallel"] == pytest.approx(0.3)
        assert eps["composed"] == pytest.approx(0.5)
        [(_, _, entries)] = families["repro_privacy_ledger_entries"]["samples"]
        assert entries == 2

    def test_budget_account_gauges(self):
        text = render_openmetrics(
            _populated_recorder(), budget_store=_populated_store()
        )
        families = parse_openmetrics(text)
        spent = {
            (s[1]["tenant"], s[1]["principal"]): s[2]
            for s in families["repro_budget_epsilon_spent"]["samples"]
        }
        assert spent[("acme", "default")] == pytest.approx(1.5)
        assert spent[("globex", "alice")] == pytest.approx(2.0)
        remaining = {
            (s[1]["tenant"], s[1]["principal"]): s[2]
            for s in families["repro_budget_epsilon_remaining"]["samples"]
        }
        assert remaining[("acme", "default")] == pytest.approx(3.5)
        charges = {
            (s[1]["tenant"], s[1]["principal"]): s[2]
            for s in families["repro_budget_charges"]["samples"]
        }
        assert charges[("acme", "default")] == 2
        assert "repro_budget_degraded_charges" in families

    def test_snapshot_source_renders_identically(self):
        rec = _populated_recorder()
        assert render_openmetrics(rec.snapshot()) == render_openmetrics(rec)

    def test_v1_raw_list_histograms_still_render(self):
        snapshot = {
            "counters": {},
            "spans": [],
            "histograms": {"legacy.metric": [1.0, 2.0, 3.0]},
            "ledger": {"entries": []},
        }
        families = parse_openmetrics(render_openmetrics(snapshot))
        samples = families["repro_legacy_metric"]["samples"]
        assert next(s[2] for s in samples if s[0].endswith("_count")) == 3

    def test_empty_recorder_renders_just_eof(self):
        text = render_openmetrics(MetricsRecorder())
        assert text == "# EOF\n"
        assert parse_openmetrics(text) == {}


class TestRenderMetricsJson:
    def test_document_shape(self):
        doc = render_metrics_json(
            _populated_recorder(), budget_store=_populated_store()
        )
        assert doc["schema"] == "repro-metrics-export/1"
        assert doc["counters"]["auction.runs"] == 3.0
        assert doc["span_counts"] == {"exp_mech": 2, "price_set": 1}
        hist = doc["histograms"]["greedy.residual_demand"]
        assert hist["count"] == 6
        assert {"p50", "p90", "p99", "relative_error"} <= set(hist)
        assert doc["ledger"]["total_epsilon"] == pytest.approx(0.5)
        tenants = {a["tenant"] for a in doc["budget_accounts"]}
        assert tenants == {"acme", "globex"}

    def test_json_able(self):
        import json

        json.dumps(render_metrics_json(_populated_recorder()))


class TestParserStrictness:
    def test_valid_minimal_document(self):
        text = "# TYPE repro_x counter\nrepro_x_total 1\n# EOF\n"
        families = parse_openmetrics(text)
        assert families["repro_x"]["samples"] == [("repro_x_total", {}, 1.0)]

    @pytest.mark.parametrize(
        "text, match",
        [
            ("", "empty"),
            ("# TYPE a counter\na_total 1\n", "missing terminal # EOF"),
            ("# TYPE a counter\na_total 1\n# EOF\nextra 2\n", "after # EOF"),
            ("a_total 1\n# EOF\n", "before any # TYPE"),
            (
                "# TYPE a counter\n# TYPE a counter\n# EOF\n",
                "duplicate TYPE",
            ),
            (
                "# TYPE a counter\na_total 1\na_total 1\n# EOF\n",
                "duplicate series",
            ),
            ("# TYPE a counter\na 1\n# EOF\n", "does not belong"),
            ("# TYPE a wibble\n# EOF\n", "unknown metric type"),
            ("# HELP a text\n# EOF\n", "HELP before TYPE"),
            ("# TYPE a counter\n\n# EOF\n", "blank line"),
            (
                '# TYPE a histogram\na_bucket{le="1",le="2"} 1\n# EOF\n',
                "duplicate label",
            ),
            (
                "# TYPE a histogram\na_bucket 1\n# EOF\n",
                "missing 'le' label",
            ),
            (
                '# TYPE a gauge\na{bad-label="x"} 1\n# EOF\n',
                "malformed",
            ),
            ("# TYPE a counter\na_total abc\n# EOF\n", "malformed sample"),
        ],
    )
    def test_violations_rejected(self, text, match):
        with pytest.raises(ValidationError, match=match):
            parse_openmetrics(text)

    def test_non_cumulative_histogram_rejected(self):
        text = (
            "# TYPE a histogram\n"
            'a_bucket{le="1"} 5\n'
            'a_bucket{le="2"} 3\n'
            'a_bucket{le="+Inf"} 5\n'
            "a_sum 4\n"
            "a_count 5\n"
            "# EOF\n"
        )
        with pytest.raises(ValidationError, match="cumulative"):
            parse_openmetrics(text)

    def test_unsorted_histogram_le_rejected(self):
        text = (
            "# TYPE a histogram\n"
            'a_bucket{le="2"} 1\n'
            'a_bucket{le="1"} 2\n'
            'a_bucket{le="+Inf"} 2\n'
            "a_sum 3\n"
            "a_count 2\n"
            "# EOF\n"
        )
        with pytest.raises(ValidationError, match="ascending"):
            parse_openmetrics(text)

    def test_inf_bucket_count_mismatch_rejected(self):
        text = (
            "# TYPE a histogram\n"
            'a_bucket{le="1"} 1\n'
            'a_bucket{le="+Inf"} 1\n'
            "a_sum 1\n"
            "a_count 2\n"
            "# EOF\n"
        )
        with pytest.raises(ValidationError, match="_count"):
            parse_openmetrics(text)

    def test_missing_terminal_inf_bucket_rejected(self):
        text = (
            "# TYPE a histogram\n"
            'a_bucket{le="1"} 1\n'
            "a_sum 1\n"
            "a_count 1\n"
            "# EOF\n"
        )
        with pytest.raises(ValidationError, match="\\+Inf"):
            parse_openmetrics(text)

    def test_escaped_label_values_parse(self):
        text = '# TYPE a gauge\na{x="quo\\"te"} 1\n# EOF\n'
        families = parse_openmetrics(text)
        [(_, labels, _)] = families["a"]["samples"]
        assert labels == {"x": 'quo\\"te'}

    def test_inf_values_parse(self):
        text = "# TYPE a gauge\na +Inf\n# EOF\n"
        [(_, _, value)] = parse_openmetrics(text)["a"]["samples"]
        assert value == math.inf
