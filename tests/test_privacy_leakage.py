"""Unit tests for repro.privacy.leakage."""

import numpy as np
import pytest

from repro.auction.mechanism import PricePMF
from repro.exceptions import ValidationError
from repro.privacy.leakage import (
    kl_divergence,
    max_log_ratio,
    pmf_kl_divergence,
    pmf_max_log_ratio,
    pmf_total_variation,
    total_variation,
)


class TestKLDivergence:
    def test_zero_for_identical(self):
        p = np.array([0.3, 0.7])
        assert kl_divergence(p, p) == pytest.approx(0.0)

    def test_known_value(self):
        p, q = np.array([0.5, 0.5]), np.array([0.9, 0.1])
        expected = 0.5 * np.log(0.5 / 0.9) + 0.5 * np.log(0.5 / 0.1)
        assert kl_divergence(p, q) == pytest.approx(expected)

    def test_asymmetric(self):
        p, q = np.array([0.5, 0.5]), np.array([0.9, 0.1])
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))

    def test_infinite_on_support_mismatch(self):
        p, q = np.array([0.5, 0.5]), np.array([1.0, 0.0])
        assert kl_divergence(p, q) == float("inf")

    def test_zero_p_points_ignored(self):
        p, q = np.array([0.0, 1.0]), np.array([0.5, 0.5])
        assert kl_divergence(p, q) == pytest.approx(np.log(2))

    def test_nonnegative(self, rng):
        for _ in range(10):
            p = rng.dirichlet(np.ones(5))
            q = rng.dirichlet(np.ones(5))
            assert kl_divergence(p, q) >= -1e-12

    def test_requires_normalized(self):
        with pytest.raises(ValidationError, match="sum to 1"):
            kl_divergence(np.array([0.5, 0.4]), np.array([0.5, 0.5]))

    def test_requires_same_support(self):
        with pytest.raises(ValidationError, match="support"):
            kl_divergence(np.array([1.0]), np.array([0.5, 0.5]))


class TestMaxLogRatio:
    def test_zero_for_identical(self):
        p = np.array([0.2, 0.8])
        assert max_log_ratio(p, p) == pytest.approx(0.0)

    def test_symmetric(self):
        p, q = np.array([0.2, 0.8]), np.array([0.5, 0.5])
        assert max_log_ratio(p, q) == pytest.approx(max_log_ratio(q, p))

    def test_known_value(self):
        p, q = np.array([0.2, 0.8]), np.array([0.4, 0.6])
        assert max_log_ratio(p, q) == pytest.approx(np.log(2))

    def test_infinite_on_one_sided_zero(self):
        p, q = np.array([0.0, 1.0]), np.array([0.5, 0.5])
        assert max_log_ratio(p, q) == float("inf")

    def test_shared_zero_is_fine(self):
        p = np.array([0.0, 0.5, 0.5])
        q = np.array([0.0, 0.6, 0.4])
        assert np.isfinite(max_log_ratio(p, q))


class TestTotalVariation:
    def test_range(self):
        p, q = np.array([1.0, 0.0]), np.array([0.0, 1.0])
        assert total_variation(p, q) == pytest.approx(1.0)
        assert total_variation(p, p) == pytest.approx(0.0)

    def test_known_value(self):
        p, q = np.array([0.5, 0.5]), np.array([0.75, 0.25])
        assert total_variation(p, q) == pytest.approx(0.25)


def _pmf(prices, probs):
    sets = tuple(np.array([0]) for _ in prices)
    return PricePMF(
        prices=np.array(prices, dtype=float),
        probabilities=np.array(probs, dtype=float),
        winner_sets=sets,
        n_workers=2,
    )


class TestPMFWrappers:
    def test_aligned_supports(self):
        a = _pmf([1.0, 2.0], [0.4, 0.6])
        b = _pmf([1.0, 2.0], [0.5, 0.5])
        assert pmf_kl_divergence(a, b) > 0
        assert pmf_max_log_ratio(a, b) > 0
        assert pmf_total_variation(a, b) == pytest.approx(0.1)

    def test_support_mismatch_raises(self):
        a = _pmf([1.0, 2.0], [0.4, 0.6])
        b = _pmf([1.0, 3.0], [0.4, 0.6])
        with pytest.raises(ValidationError, match="supports"):
            pmf_kl_divergence(a, b)

    def test_size_mismatch_raises(self):
        a = _pmf([1.0, 2.0], [0.4, 0.6])
        b = _pmf([1.0], [1.0])
        with pytest.raises(ValidationError, match="supports"):
            pmf_max_log_ratio(a, b)
