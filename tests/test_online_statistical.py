"""Statistical verification of the online mechanisms (``statistical`` tier).

Excluded from tier-1 by the default ``-m "not scale and not statistical"``
addopts; run explicitly with ``pytest -m statistical``.  The CI
``online-smoke`` job runs a bounded variant via ``REPRO_STAT_SMOKE=1``.

All randomness is seeded — every estimate below is a fixed number, so a
failure is a real regression, not bad luck:

* **Empirical competitive ratio** — ≥200 seeded arrival permutations vs
  the offline optimum; the mean must stay inside the analytic
  ``8·n_stages`` envelope.
* **Exact per-stage DP divergence** — each stage's calibration PMF on a
  neighboring stream diverges by at most ``ε/n_stages`` (and measurably
  more than zero, so the check is not vacuous).
* **Empirical ε** — a black-box observer of released threshold
  sequences measures at most the ledger-charged ε plus sampling noise.
* **Chi-square** — sampled stage-0 thresholds through the deployed
  ``run`` path are consistent with the exact ``calibration_pmf``.
"""

import math
import os

import numpy as np
import pytest
from scipy import stats

from repro.analysis.online import competitive_audit, online_empirical_epsilon
from repro.auction.bids import Bid
from repro.mechanisms.online import (
    DPOnlineThresholdMechanism,
    OnlineThresholdMechanism,
)
from repro.obs import MetricsRecorder, use_recorder
from repro.workloads import OnlineArrivalStream, generate_instance
from repro.workloads.settings import SimulationSetting

pytestmark = pytest.mark.statistical

#: Bounded-CI mode: fewer samples, same assertions (validated offline).
SMOKE = os.environ.get("REPRO_STAT_SMOKE") == "1"

N_PERMUTATIONS = 60 if SMOKE else 200
N_EPS_SAMPLES = 800 if SMOKE else 2_500
N_CHI_SAMPLES = 500 if SMOKE else 1_500
#: Sampling-noise allowance on the empirical-ε estimate (rare threshold
#: tuples carry log-ratio noise even for a perfectly private mechanism).
EPS_ALLOWANCE = 0.5
#: Rare-tuple floor for the empirical-ε maximization.  A tuple seen k
#: times on one side and never on the other contributes log(k+1) of pure
#: noise, so the floor must grow as the sample budget shrinks relative
#: to the joint support.
EPS_MIN_COUNT = 20 if SMOKE else 10
P_VALUE_FLOOR = 1e-3

SETTING = SimulationSetting(
    name="online-stat",
    epsilon=0.5,
    c_min=1.0,
    c_max=10.0,
    bundle_size=(3, 5),
    skill_range=(0.3, 0.95),
    error_threshold_range=(0.3, 0.5),
    n_workers=40,
    n_tasks=6,
    price_range=(4.0, 10.0),
    grid_step=0.5,
)


@pytest.fixture(scope="module")
def market():
    instance, _pool = generate_instance(SETTING, seed=5)
    return instance


@pytest.fixture(scope="module")
def neighbor_streams(market):
    """A stream and its one-bid neighbor sharing the same arrival order.

    The perturbed worker is the *first arrival*, so she sits inside
    every stage's calibration sample; dropping her ask to ``c_min``
    moves her static density hard enough to shift the candidate counts
    — making the exact-divergence check non-vacuous.
    """
    stream = OnlineArrivalStream(market, order="uniform", seed=11)
    worker = int(stream.arrivals[0])
    perturbed = market.replace_bid(
        worker, Bid(sorted(market.bids[worker].bundle), SETTING.c_min)
    )
    return stream, stream.with_instance(perturbed)


class TestCompetitiveRatio:
    def test_mean_ratio_within_analytic_bound(self, market):
        mechanism = OnlineThresholdMechanism(budget=120.0, n_stages=3)
        report = competitive_audit(
            mechanism, market, n_permutations=N_PERMUTATIONS, seed=0
        )
        assert report.n_permutations == N_PERMUTATIONS
        assert np.isfinite(report.ratios).all()
        assert report.satisfied, (
            f"mean competitive ratio {report.mean_ratio:.3f} exceeds "
            f"analytic bound {report.bound}"
        )
        assert report.worst_ratio <= report.bound
        assert report.fraction_within_bound == 1.0
        assert report.mean_regret >= 0.0

    def test_dp_variant_stays_within_bound(self, market):
        mechanism = DPOnlineThresholdMechanism(
            budget=120.0, epsilon=1.2, n_stages=3, record_ledger=False
        )
        report = competitive_audit(
            mechanism, market, n_permutations=max(N_PERMUTATIONS // 2, 30), seed=1
        )
        assert np.isfinite(report.ratios).all()
        assert report.satisfied

    def test_adversarial_and_bursty_orders_still_produce_value(self, market):
        mechanism = OnlineThresholdMechanism(budget=120.0, n_stages=3)
        for order in ("adversarial", "bursty"):
            report = competitive_audit(
                mechanism,
                market,
                n_permutations=max(N_PERMUTATIONS // 4, 20),
                seed=2,
                order=order,
                churn=0.2,
            )
            assert report.order == order
            assert np.mean(np.isfinite(report.ratios)) >= 0.9
            assert report.mean_regret <= report.offline_value


class TestDifferentialPrivacy:
    EPSILON = 1.2
    N_STAGES = 2

    def _mechanism(self, record_ledger=False):
        return DPOnlineThresholdMechanism(
            budget=120.0,
            epsilon=self.EPSILON,
            n_stages=self.N_STAGES,
            n_candidates=32,
            record_ledger=record_ledger,
        )

    def test_exact_per_stage_divergence_within_stage_epsilon(
        self, neighbor_streams
    ):
        mechanism = self._mechanism()
        stream_a, stream_b = neighbor_streams
        divergences = []
        for stage in range(self.N_STAGES):
            _, pmf_a = mechanism.calibration_pmf(stream_a, stage)
            _, pmf_b = mechanism.calibration_pmf(stream_b, stage)
            divergences.append(float(np.max(np.abs(np.log(pmf_a / pmf_b)))))
        for divergence in divergences:
            assert divergence <= mechanism.stage_epsilon + 1e-9
        # Non-vacuous: the neighbor measurably moves the distribution.
        assert max(divergences) > 0.0

    def test_empirical_epsilon_within_charged_budget(self, neighbor_streams):
        mechanism = self._mechanism()
        stream_a, stream_b = neighbor_streams
        estimate = online_empirical_epsilon(
            mechanism,
            stream_a,
            stream_b,
            n_samples=N_EPS_SAMPLES,
            seed=2026,
            min_count=EPS_MIN_COUNT,
        )
        assert 0.0 < estimate <= self.EPSILON + EPS_ALLOWANCE, (
            f"empirical epsilon {estimate:.3f} exceeds charged "
            f"{self.EPSILON} + allowance {EPS_ALLOWANCE}"
        )

    def test_charged_epsilon_matches_ledger_on_audited_path(
        self, neighbor_streams
    ):
        recorder = MetricsRecorder()
        mechanism = self._mechanism(record_ledger=True)
        with use_recorder(recorder):
            outcome = mechanism.run(neighbor_streams[0], seed=3)
        assert outcome.charged_epsilon == pytest.approx(self.EPSILON)
        assert recorder.ledger.total_epsilon == pytest.approx(self.EPSILON)

    def test_chi_square_sampled_thresholds_match_calibration_pmf(
        self, neighbor_streams
    ):
        mechanism = self._mechanism()
        stream, _ = neighbor_streams
        candidates, probabilities = mechanism.calibration_pmf(stream, stage=0)
        counts = np.zeros(candidates.size)
        for child in np.random.SeedSequence(77).spawn(N_CHI_SAMPLES):
            outcome = mechanism.run(stream, seed=child)
            index = int(np.searchsorted(candidates, outcome.thresholds[0]))
            assert math.isclose(candidates[index], outcome.thresholds[0])
            counts[index] += 1
        # Pool support points with tiny expected mass so the chi-square
        # approximation holds (textbook >=5 expected per cell).
        keep = probabilities * N_CHI_SAMPLES >= 5.0
        pooled_counts = np.append(counts[keep], counts[~keep].sum())
        pooled_expected = np.append(
            probabilities[keep] * N_CHI_SAMPLES,
            probabilities[~keep].sum() * N_CHI_SAMPLES,
        )
        if pooled_expected[-1] == 0.0:
            assert pooled_counts[-1] == 0.0
            pooled_counts, pooled_expected = pooled_counts[:-1], pooled_expected[:-1]
        result = stats.chisquare(pooled_counts, pooled_expected)
        assert result.pvalue > P_VALUE_FLOOR, (
            f"sampled thresholds inconsistent with calibration_pmf "
            f"(p={result.pvalue:.2e})"
        )
