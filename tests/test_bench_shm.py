"""Zero-copy shared-memory batch transport: fidelity, parity, no leaks.

Three contracts are pinned here:

* **Value fidelity** — an instance rebuilt from the columnar segment is
  equal to the original in every field the mechanisms read, and its
  arrays are zero-copy views into the pools (no hidden re-copy).
* **Transport parity** — the batch runner produces bit-identical
  outcomes and identical deterministically-merged metrics across
  ``transport="pickle"``/``"shared_memory"`` and serial/process
  backends.
* **No leaked segments** — every run, including one whose worker
  crashes mid-batch (injected via :class:`repro.resilience.FaultPlan`),
  leaves ``/dev/shm`` exactly as it found it.
"""

import pickle
from pathlib import Path

import numpy as np
import pytest

from repro.bench import (
    BatchAuctionRunner,
    SharedInstanceBatch,
    list_batch_segments,
    pack_instances,
    seeded_auction_batch,
)
from repro.bench.shm import SEGMENT_PREFIX
from repro.mechanisms.dp_hsrc import DPHSRCAuction
from repro.obs import MetricsRecorder
from repro.resilience import FaultPlan

pytestmark = pytest.mark.skipif(
    not Path("/dev/shm").is_dir(), reason="requires a /dev/shm filesystem"
)


@pytest.fixture(scope="module")
def batch():
    return seeded_auction_batch(4, n_workers=30, n_tasks=6, seed=2016)


@pytest.fixture(scope="module")
def mechanism():
    return DPHSRCAuction(epsilon=0.5)


def assert_instances_equal(a, b):
    assert np.array_equal(a.quality, b.quality)
    assert np.array_equal(a.demands, b.demands)
    assert np.array_equal(a.price_grid, b.price_grid)
    assert np.array_equal(a.prices, b.prices)
    assert np.array_equal(a.effective_quality, b.effective_quality)
    assert (a.c_min, a.c_max) == (b.c_min, b.c_max)
    assert a.bids == b.bids


class TestColumnarRoundTrip:
    def test_pack_unpack_is_value_faithful(self, batch):
        packed = pack_instances(batch)
        assert packed.n_instances == len(batch)
        for i, original in enumerate(batch):
            assert_instances_equal(original, packed.unpack(i))

    def test_shared_views_are_zero_copy_and_read_only(self, batch):
        shared = SharedInstanceBatch.create(batch)
        rebuilt = None
        try:
            rebuilt = shared.batch.unpack(0)
            assert np.shares_memory(rebuilt.quality, shared.batch.floats)
            assert np.shares_memory(rebuilt.prices, shared.batch.floats)
            assert not rebuilt.quality.flags.writeable
            assert_instances_equal(batch[0], rebuilt)
        finally:
            # Release the segment views before unmapping, or close() (here
            # and again in SharedMemory.__del__) trips on exported buffers.
            del rebuilt
            shared.dispose()

    def test_handle_is_small_and_picklable(self, batch):
        shared = SharedInstanceBatch.create(batch)
        try:
            blob = pickle.dumps(shared.handle)
            # The whole point: the handle, not the arrays, crosses the
            # process boundary.
            assert len(blob) < 512
            assert pickle.loads(blob) == shared.handle
        finally:
            shared.dispose()


class TestTransportParity:
    def test_outcomes_identical_across_backends_and_transports(self, batch, mechanism):
        runs = {
            (backend, transport): BatchAuctionRunner(
                mechanism, backend=backend, max_workers=2, transport=transport
            ).run(batch, seed=7)
            for backend in ("serial", "process")
            for transport in ("pickle", "shared_memory")
        }
        reference = runs[("serial", "pickle")]
        for key, result in runs.items():
            assert result.n_failed == 0, key
            for a, b in zip(reference.outcomes, result.outcomes):
                assert a.price == b.price, key
                assert np.array_equal(a.winners, b.winners), key
                assert np.array_equal(a.payments, b.payments), key

    def test_merged_metrics_identical_across_transports(self, batch, mechanism):
        counters = {}
        for transport in ("pickle", "shared_memory"):
            recorder = MetricsRecorder()
            BatchAuctionRunner(
                mechanism, backend="process", max_workers=2, transport=transport
            ).run(batch, seed=7, recorder=recorder)
            counters[transport] = dict(recorder.counters)
        assert counters["pickle"] == counters["shared_memory"]

    def test_unknown_transport_is_rejected(self, mechanism):
        with pytest.raises(ValueError, match="transport must be one of"):
            BatchAuctionRunner(mechanism, transport="carrier_pigeon")


class TestNoLeakedSegments:
    def test_clean_run_leaves_dev_shm_untouched(self, batch, mechanism):
        before = list_batch_segments()
        BatchAuctionRunner(
            mechanism, backend="process", max_workers=2, transport="shared_memory"
        ).run(batch, seed=7)
        assert list_batch_segments() == before

    def test_serial_run_leaves_dev_shm_untouched(self, batch, mechanism):
        before = list_batch_segments()
        BatchAuctionRunner(mechanism, backend="serial", transport="shared_memory").run(
            batch, seed=7
        )
        assert list_batch_segments() == before

    def test_crashing_worker_still_leaves_no_segment(self, batch, mechanism):
        """A mid-batch crash quarantines the instance, not the segment."""
        before = list_batch_segments()
        result = BatchAuctionRunner(
            mechanism,
            backend="process",
            max_workers=2,
            transport="shared_memory",
            fault_plan=FaultPlan.parse("crash@1"),
        ).run(batch, seed=7)
        assert list_batch_segments() == before
        assert result.n_failed == 1
        assert result.outcomes[1] is None
        assert all(
            outcome is not None for i, outcome in enumerate(result.outcomes) if i != 1
        )

    def test_dispose_is_idempotent(self, batch):
        shared = SharedInstanceBatch.create(batch)
        name = shared.handle.name
        assert name.startswith(SEGMENT_PREFIX)
        assert name in list_batch_segments()
        shared.dispose()
        assert name not in list_batch_segments()
        shared.dispose()  # second call must not raise
