"""Unit tests for repro.coverage.exact (both backends)."""

import numpy as np
import pytest

from repro.coverage.exact import solve_exact
from repro.coverage.greedy import greedy_cover
from repro.coverage.problem import CoverProblem
from repro.exceptions import InfeasibleError


BACKENDS = ["milp", "bnb"]


def random_problem(seed, n_items=15, n_constraints=4, demand=1.5):
    rng = np.random.default_rng(seed)
    gains = rng.uniform(0, 1, (n_items, n_constraints))
    gains[rng.random(gains.shape) < 0.4] = 0.0  # sparsity, like bundles
    return CoverProblem(gains=gains, demands=np.full(n_constraints, demand))


@pytest.mark.parametrize("backend", BACKENDS)
class TestBothBackends:
    def test_disjoint_unit_cover(self, backend):
        p = CoverProblem(gains=np.eye(3), demands=np.ones(3))
        result = solve_exact(p, backend=backend)
        assert result.size == 3
        assert result.certified

    def test_single_strong_item_beats_many_weak(self, backend):
        p = CoverProblem(
            gains=np.array([[0.5, 0.5], [0.5, 0.5], [1.0, 1.0]]),
            demands=np.array([1.0, 1.0]),
        )
        result = solve_exact(p, backend=backend)
        assert result.size == 1
        assert result.selection.tolist() == [2]

    def test_zero_demand_selects_nothing(self, backend):
        p = CoverProblem(gains=np.ones((2, 1)), demands=np.array([0.0]))
        assert solve_exact(p, backend=backend).size == 0

    def test_infeasible_raises(self, backend):
        p = CoverProblem(gains=np.full((2, 1), 0.3), demands=np.array([1.0]))
        with pytest.raises(InfeasibleError):
            solve_exact(p, backend=backend)

    def test_solution_is_feasible(self, backend):
        p = random_problem(0)
        result = solve_exact(p, backend=backend)
        assert p.is_feasible(result.selection)

    def test_optimal_not_worse_than_greedy(self, backend):
        for seed in range(5):
            p = random_problem(seed)
            if not p.is_coverable():
                continue
            assert solve_exact(p, backend=backend).size <= greedy_cover(p).size

    def test_backend_recorded(self, backend):
        p = CoverProblem(gains=np.eye(2), demands=np.ones(2))
        assert solve_exact(p, backend=backend).backend == backend


class TestBackendAgreement:
    @pytest.mark.parametrize("seed", range(8))
    def test_backends_agree_on_optimal_size(self, seed):
        p = random_problem(seed, n_items=12, n_constraints=3)
        if not p.is_coverable():
            pytest.skip("instance not coverable")
        milp = solve_exact(p, backend="milp")
        bnb = solve_exact(p, backend="bnb")
        assert milp.size == bnb.size


class TestMilpSpecifics:
    def test_time_limit_still_returns_feasible(self):
        # Even with an absurdly small limit HiGHS gets an incumbent from
        # presolve on such a small instance; we only require feasibility.
        p = random_problem(1, n_items=20, n_constraints=5)
        result = solve_exact(p, backend="milp", time_limit=10.0)
        assert p.is_feasible(result.selection)


class TestBnbSpecifics:
    def test_node_limit_exhaustion_raises(self):
        from repro.exceptions import SolverError

        p = random_problem(2, n_items=25, n_constraints=6, demand=2.5)
        if not p.is_coverable():
            pytest.skip("instance not coverable")
        with pytest.raises(SolverError, match="node limit"):
            solve_exact(p, backend="bnb", node_limit=1)

    def test_reports_nodes(self):
        p = CoverProblem(gains=np.eye(2), demands=np.ones(2))
        assert solve_exact(p, backend="bnb").nodes >= 1


def test_unknown_backend_rejected():
    p = CoverProblem(gains=np.eye(2), demands=np.ones(2))
    with pytest.raises(ValueError, match="unknown exact backend"):
        solve_exact(p, backend="magic")
