"""Property-based tests for the set-multicover substrate (hypothesis)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.coverage.bounds import greedy_approximation_factor
from repro.coverage.exact import solve_exact
from repro.coverage.greedy import greedy_cover, static_order_cover
from repro.coverage.lp import lp_lower_bound
from repro.coverage.problem import CoverProblem
from repro.exceptions import InfeasibleError


def cover_problems(max_items=12, max_constraints=4):
    """Strategy: coverable problems with lattice-valued gains/demands."""

    @st.composite
    def build(draw):
        n_items = draw(st.integers(1, max_items))
        n_constraints = draw(st.integers(1, max_constraints))
        gains = draw(
            arrays(
                dtype=np.float64,
                shape=(n_items, n_constraints),
                elements=st.sampled_from([0.0, 0.1, 0.25, 0.5, 0.75, 1.0]),
            )
        )
        demand_scale = draw(st.floats(0.1, 0.9))
        demands = gains.sum(axis=0) * demand_scale
        return CoverProblem(gains=gains, demands=demands)

    return build()


class TestGreedyProperties:
    @given(problem=cover_problems())
    @settings(max_examples=60, deadline=None)
    def test_greedy_result_is_always_feasible(self, problem):
        result = greedy_cover(problem)
        assert problem.is_feasible(result.selection)

    @given(problem=cover_problems())
    @settings(max_examples=60, deadline=None)
    def test_greedy_selection_has_no_duplicates(self, problem):
        result = greedy_cover(problem)
        assert len(set(result.order)) == len(result.order)

    @given(problem=cover_problems())
    @settings(max_examples=60, deadline=None)
    def test_static_cover_feasible_and_no_smaller_than_greedy_trunc(self, problem):
        static = static_order_cover(problem)
        assert problem.is_feasible(static.selection)

    @given(problem=cover_problems())
    @settings(max_examples=40, deadline=None)
    def test_greedy_minimal_prefix(self, problem):
        """Dropping the last greedily-selected item breaks feasibility."""
        result = greedy_cover(problem)
        assume(result.size > 0)
        without_last = [i for i in result.order[:-1]]
        assert not problem.is_feasible(without_last) or len(without_last) == len(
            result.order
        )


class TestSolverSandwich:
    @given(problem=cover_problems(max_items=10, max_constraints=3))
    @settings(max_examples=25, deadline=None)
    def test_lp_opt_greedy_sandwich(self, problem):
        """LP ≤ OPT ≤ greedy ≤ 2βH_m·OPT, on every coverable instance."""
        lp = lp_lower_bound(problem).objective
        opt = solve_exact(problem, backend="milp").size
        greedy = greedy_cover(problem).size
        assert lp <= opt + 1e-6
        assert opt <= greedy
        if opt > 0:
            factor = greedy_approximation_factor(problem, unit=0.05)
            assert greedy <= factor * opt + 1e-9

    @given(problem=cover_problems(max_items=8, max_constraints=3))
    @settings(max_examples=15, deadline=None)
    def test_backends_agree(self, problem):
        milp = solve_exact(problem, backend="milp").size
        bnb = solve_exact(problem, backend="bnb").size
        assert milp == bnb


class TestResidualProperties:
    @given(problem=cover_problems())
    @settings(max_examples=60, deadline=None)
    def test_residual_monotone_under_selection_growth(self, problem):
        """Adding items never increases any residual demand."""
        items = list(range(problem.n_items))
        for cut in range(len(items)):
            r_small = problem.residual(items[:cut])
            r_big = problem.residual(items[: cut + 1])
            assert np.all(r_big <= r_small + 1e-12)

    @given(problem=cover_problems())
    @settings(max_examples=60, deadline=None)
    def test_residual_never_negative(self, problem):
        assert np.all(problem.residual(range(problem.n_items)) >= 0)
