"""Unit tests for repro.analysis.payment."""

import numpy as np
import pytest

from repro.analysis.payment import (
    approximation_ratio,
    exact_payment_stats,
    sampled_payment_stats,
)
from repro.auction.mechanism import PricePMF


def two_point_pmf():
    return PricePMF(
        prices=np.array([2.0, 4.0]),
        probabilities=np.array([0.5, 0.5]),
        winner_sets=(np.array([0]), np.array([0, 1])),
        n_workers=3,
    )


class TestSampledStats:
    def test_converges_to_exact(self):
        pmf = two_point_pmf()
        stats = sampled_payment_stats(pmf, n_samples=100_000, seed=0)
        exact = exact_payment_stats(pmf)
        assert stats.mean == pytest.approx(exact.mean, rel=0.02)
        assert stats.std == pytest.approx(exact.std, rel=0.05)

    def test_sample_count_recorded(self):
        stats = sampled_payment_stats(two_point_pmf(), n_samples=100, seed=1)
        assert stats.n_samples == 100

    def test_point_mass_has_zero_std(self):
        pmf = PricePMF(
            prices=np.array([3.0]),
            probabilities=np.array([1.0]),
            winner_sets=(np.array([0, 1]),),
            n_workers=2,
        )
        stats = sampled_payment_stats(pmf, n_samples=50, seed=2)
        assert stats.mean == 6.0
        assert stats.std == 0.0

    def test_rejects_zero_samples(self):
        with pytest.raises(ValueError, match="n_samples"):
            sampled_payment_stats(two_point_pmf(), n_samples=0)

    def test_reproducible(self):
        a = sampled_payment_stats(two_point_pmf(), 1000, seed=3)
        b = sampled_payment_stats(two_point_pmf(), 1000, seed=3)
        assert a.mean == b.mean


class TestExactStats:
    def test_moments(self):
        stats = exact_payment_stats(two_point_pmf())
        # payments: 2 and 8, each with prob 0.5
        assert stats.mean == pytest.approx(5.0)
        assert stats.std == pytest.approx(3.0)
        assert stats.n_samples == 0


class TestApproximationRatio:
    def test_basic(self):
        assert approximation_ratio(150.0, 100.0) == pytest.approx(1.5)

    def test_optimal_is_one(self):
        assert approximation_ratio(100.0, 100.0) == 1.0

    def test_rejects_zero_optimal(self):
        with pytest.raises(Exception):
            approximation_ratio(1.0, 0.0)


class TestSocialCost:
    def test_sums_winner_costs(self):
        from repro.analysis.payment import social_cost
        from repro.auction.outcome import AuctionOutcome

        outcome = AuctionOutcome(winners=[0, 2], price=5.0, n_workers=3)
        assert social_cost(outcome, np.array([1.0, 9.0, 2.5])) == 3.5

    def test_empty_winners(self):
        from repro.analysis.payment import social_cost
        from repro.auction.outcome import AuctionOutcome

        outcome = AuctionOutcome(winners=[], price=5.0, n_workers=2)
        assert social_cost(outcome, np.array([1.0, 2.0])) == 0.0

    def test_social_cost_never_exceeds_payment_under_ir(self, tiny_setting):
        """With truthful bids and IR, payment >= social cost."""
        from repro.analysis.payment import social_cost
        from repro.mechanisms.dp_hsrc import DPHSRCAuction
        from repro.workloads.generator import generate_instance

        instance, pool = generate_instance(tiny_setting, seed=0)
        outcome = DPHSRCAuction(epsilon=0.5).run(instance, seed=1)
        assert social_cost(outcome, pool.costs) <= outcome.total_payment + 1e-9

    def test_short_cost_vector_rejected(self):
        from repro.analysis.payment import social_cost
        from repro.auction.outcome import AuctionOutcome

        outcome = AuctionOutcome(winners=[2], price=5.0, n_workers=3)
        with pytest.raises(ValueError, match="shorter"):
            social_cost(outcome, np.array([1.0, 2.0]))
