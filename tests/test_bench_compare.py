"""Tests for the scripts/bench.py ``compare`` regression gate."""

import importlib.util
import json
from pathlib import Path

import pytest

_BENCH_PATH = Path(__file__).resolve().parents[1] / "scripts" / "bench.py"
_spec = importlib.util.spec_from_file_location("bench_script", _BENCH_PATH)
bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench)


def _doc(entries, suite="auction", smoke=True):
    return {
        "schema": "repro-bench/2",
        "suite": suite,
        "smoke": smoke,
        "environment": {},
        "results": entries,
    }


def _entry(seconds=1.0, exp_mech=0.6, **overrides):
    entry = {
        "name": "batch_runner",
        "backend": "serial",
        "transport": "pickle",
        "n_instances": 8,
        "seed": 7,
        "seconds": seconds,
        "metrics": {
            "span_seconds": {"exp_mech": exp_mech, "greedy_group": 0.3},
            "span_counts": {"exp_mech": 8, "greedy_group": 20},
            "counters": {},
            "ledger_epsilon": 4.0,
            "ledger_entries": 8,
        },
    }
    entry.update(overrides)
    return entry


def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return path


class TestCompareDocs:
    def test_self_compare_has_no_regressions(self):
        doc = _doc([_entry()])
        report = bench.compare_bench_docs(doc, doc, 25.0)
        assert report["schema"] == "repro-bench-compare/1"
        assert report["n_matched_entries"] == 1
        assert report["n_timings_compared"] == 1
        assert report["regressions"] == []
        assert report["comparisons"][0]["delta_pct"] == 0.0

    def test_regression_past_threshold_is_flagged_and_localized(self):
        old = _doc([_entry(seconds=1.0, exp_mech=0.6)])
        new = _doc([_entry(seconds=1.5, exp_mech=1.1)])
        report = bench.compare_bench_docs(old, new, 25.0)
        [reg] = report["regressions"]
        assert reg["field"] == "seconds"
        assert reg["delta_pct"] == pytest.approx(50.0)
        # The phase breakdown points at exp_mech, not greedy_group.
        assert reg["phases"][0]["phase"] == "exp_mech"
        assert reg["phases"][0]["delta_seconds"] == pytest.approx(0.5)

    def test_speedup_within_threshold_passes(self):
        old = _doc([_entry(seconds=1.0)])
        new = _doc([_entry(seconds=1.1)])
        assert bench.compare_bench_docs(old, new, 25.0)["regressions"] == []
        faster = _doc([_entry(seconds=0.2)])
        assert bench.compare_bench_docs(old, faster, 25.0)["regressions"] == []

    def test_entries_match_on_name_and_shape(self):
        old = _doc([_entry(backend="serial"), _entry(backend="process", seconds=2.0)])
        new = _doc([_entry(backend="serial", seconds=10.0)])
        report = bench.compare_bench_docs(old, new, 25.0)
        assert report["n_matched_entries"] == 1
        assert report["n_old_only"] == 1
        assert report["n_new_only"] == 0
        # Only the matching serial entry is compared (and regresses).
        assert [r["entry"]["backend"] for r in report["regressions"]] == ["serial"]

    def test_all_shared_timing_fields_are_compared(self):
        entry_extra = _entry()
        entry_extra["vectorized_seconds"] = 0.2
        entry_extra["reference_seconds"] = 2.0
        doc = _doc([entry_extra])
        report = bench.compare_bench_docs(doc, doc, 25.0)
        fields = {c["field"] for c in report["comparisons"]}
        assert fields == {"seconds", "vectorized_seconds", "reference_seconds"}

    def test_v1_entries_without_metrics_localize_to_nothing(self):
        old_entry = _entry(seconds=1.0)
        new_entry = _entry(seconds=2.0)
        del old_entry["metrics"], new_entry["metrics"]
        report = bench.compare_bench_docs(_doc([old_entry]), _doc([new_entry]), 25.0)
        [reg] = report["regressions"]
        assert reg["phases"] == []


class TestCompareMain:
    def test_self_compare_exits_zero(self, tmp_path, capsys):
        path = _write(tmp_path, "a.json", _doc([_entry()]))
        assert bench.compare_main([str(path), str(path)]) == 0
        assert "no timing regressed" in capsys.readouterr().out

    def test_injected_regression_exits_one(self, tmp_path, capsys):
        old = _write(tmp_path, "old.json", _doc([_entry(seconds=1.0)]))
        new = _write(
            tmp_path, "new.json", _doc([_entry(seconds=1.6, exp_mech=1.2)])
        )
        assert (
            bench.compare_main(
                [str(old), str(new), "--max-regression", "25", "--report",
                 str(tmp_path / "report.json")]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "exp_mech" in out
        report = json.loads((tmp_path / "report.json").read_text())
        assert report["schema"] == "repro-bench-compare/1"
        assert len(report["regressions"]) == 1

    def test_regression_at_exactly_the_threshold_passes(self, tmp_path):
        old = _write(tmp_path, "old.json", _doc([_entry(seconds=1.0)]))
        new = _write(tmp_path, "new.json", _doc([_entry(seconds=1.25)]))
        assert bench.compare_main([str(old), str(new), "--max-regression", "25"]) == 0

    def test_unreadable_file_exits_two(self, tmp_path, capsys):
        good = _write(tmp_path, "a.json", _doc([_entry()]))
        assert bench.compare_main([str(tmp_path / "missing.json"), str(good)]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_invalid_json_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        good = _write(tmp_path, "a.json", _doc([_entry()]))
        assert bench.compare_main([str(bad), str(good)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_wrong_schema_exits_two(self, tmp_path, capsys):
        wrong = _write(tmp_path, "wrong.json", {"schema": "other/1", "results": []})
        good = _write(tmp_path, "a.json", _doc([_entry()]))
        assert bench.compare_main([str(wrong), str(good)]) == 2
        assert "repro-bench" in capsys.readouterr().err

    def test_disjoint_suites_exit_two(self, tmp_path, capsys):
        a = _write(tmp_path, "a.json", _doc([_entry()]))
        b = _write(
            tmp_path, "b.json", _doc([_entry(name="price_pmf")], suite="greedy")
        )
        assert bench.compare_main([str(a), str(b)]) == 2
        assert "no matching entries" in capsys.readouterr().err

    def test_new_only_scenario_in_same_suite_exits_zero(self, tmp_path, capsys):
        """A freshly landed scenario has no baseline — that is not a failure."""
        old = _write(tmp_path, "old.json", _doc([_entry()]))
        new = _write(
            tmp_path,
            "new.json",
            _doc([_entry(), _entry(name="online_throughput", n_instances=1)]),
        )
        assert bench.compare_main([str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "no timing regressed" in out

    def test_all_new_entries_in_same_suite_exit_zero_with_note(
        self, tmp_path, capsys
    ):
        """First landing of a suite's only scenario: nothing to compare yet."""
        old = _write(tmp_path, "old.json", _doc([_entry()]))
        new = _write(
            tmp_path,
            "new.json",
            _doc([_entry(name="online_throughput", n_instances=1)]),
        )
        assert bench.compare_main([str(old), str(new)]) == 0
        assert "nothing to compare yet" in capsys.readouterr().out

    def test_all_new_entries_still_fail_across_suites(self, tmp_path, capsys):
        """The new-only tolerance must not mask comparing the wrong files."""
        a = _write(tmp_path, "a.json", _doc([_entry()]))
        b = _write(
            tmp_path,
            "b.json",
            _doc([_entry(name="online_throughput")], suite="greedy"),
        )
        assert bench.compare_main([str(a), str(b)]) == 2
        assert "no matching entries" in capsys.readouterr().err

    def test_negative_threshold_exits_two(self, tmp_path, capsys):
        path = _write(tmp_path, "a.json", _doc([_entry()]))
        assert (
            bench.compare_main([str(path), str(path), "--max-regression", "-5"]) == 2
        )

    def test_main_dispatches_the_subcommand(self, tmp_path, capsys):
        path = _write(tmp_path, "a.json", _doc([_entry()]))
        assert bench.main(["compare", str(path), str(path)]) == 0


class TestCommittedBaselines:
    """The committed BENCH_*.json stay loadable and self-comparable."""

    @pytest.mark.parametrize("name", ["BENCH_greedy.json", "BENCH_auction.json"])
    def test_committed_doc_self_compares_clean(self, name):
        path = _BENCH_PATH.parents[1] / name
        if not path.exists():
            pytest.skip(f"{name} not committed")
        doc = bench.load_bench_doc(path)
        report = bench.compare_bench_docs(doc, doc, 25.0)
        assert report["n_timings_compared"] > 0
        assert report["regressions"] == []
