"""Unit tests for repro.auction.mechanism (PricePMF and the Mechanism ABC)."""

import numpy as np
import pytest

from repro.auction.mechanism import Mechanism, PricePMF
from repro.exceptions import ValidationError


def make_pmf(prices=(1.0, 2.0), probs=(0.25, 0.75), sets=((0,), (0, 1)), n_workers=3):
    return PricePMF(
        prices=np.array(prices),
        probabilities=np.array(probs),
        winner_sets=tuple(np.array(s, dtype=int) for s in sets),
        n_workers=n_workers,
    )


class TestConstruction:
    def test_basic(self):
        pmf = make_pmf()
        assert pmf.support_size == 2
        assert pmf.cover_sizes.tolist() == [1, 2]

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValidationError, match="sum to 1"):
            make_pmf(probs=(0.2, 0.2))

    def test_prices_strictly_increasing(self):
        with pytest.raises(ValidationError, match="increasing"):
            make_pmf(prices=(2.0, 1.0))

    def test_one_winner_set_per_price(self):
        with pytest.raises(ValidationError, match="per support price"):
            make_pmf(sets=((0,),))

    def test_negative_probability_rejected(self):
        with pytest.raises(ValidationError, match="non-negative"):
            make_pmf(probs=(-0.5, 1.5))

    def test_empty_support_rejected(self):
        with pytest.raises(ValidationError, match="at least one"):
            make_pmf(prices=(), probs=(), sets=())


class TestMoments:
    def test_total_payments(self):
        pmf = make_pmf()
        assert pmf.total_payments.tolist() == [1.0, 4.0]

    def test_expected_total_payment(self):
        assert make_pmf().expected_total_payment() == pytest.approx(
            0.25 * 1.0 + 0.75 * 4.0
        )

    def test_std_total_payment(self):
        pmf = make_pmf()
        mean = pmf.expected_total_payment()
        var = 0.25 * (1 - mean) ** 2 + 0.75 * (4 - mean) ** 2
        assert pmf.std_total_payment() == pytest.approx(np.sqrt(var))

    def test_min_total_payment(self):
        assert make_pmf().min_total_payment() == 1.0

    def test_point_mass_std_zero(self):
        pmf = make_pmf(prices=(2.0,), probs=(1.0,), sets=((0, 1),))
        assert pmf.std_total_payment() == 0.0


class TestQueries:
    def test_probability_of(self):
        pmf = make_pmf()
        assert pmf.probability_of(2.0) == 0.75
        assert pmf.probability_of(9.0) == 0.0

    def test_expected_utility(self):
        pmf = make_pmf()
        # worker 1 only wins at price 2 → E[u] = 0.75 * (2 - cost)
        assert pmf.expected_utility(1, cost=0.5) == pytest.approx(0.75 * 1.5)

    def test_expected_utility_never_winning(self):
        assert make_pmf().expected_utility(2, cost=0.0) == 0.0

    def test_win_probability(self):
        pmf = make_pmf()
        assert pmf.win_probability(0) == 1.0
        assert pmf.win_probability(1) == 0.75
        assert pmf.win_probability(2) == 0.0

    def test_outcome_at(self):
        out = make_pmf().outcome_at(1)
        assert out.price == 2.0
        assert out.winners.tolist() == [0, 1]
        assert out.total_payment == 4.0


class TestSampling:
    def test_sample_outcome_deterministic_seed(self):
        pmf = make_pmf()
        a = pmf.sample_outcome(seed=0)
        b = pmf.sample_outcome(seed=0)
        assert a.price == b.price

    def test_sample_prices_frequencies(self):
        pmf = make_pmf()
        prices = pmf.sample_prices(20_000, seed=1)
        frac = float(np.mean(prices == 2.0))
        assert frac == pytest.approx(0.75, abs=0.02)

    def test_sample_respects_point_mass(self):
        pmf = make_pmf(prices=(3.0,), probs=(1.0,), sets=((1,),))
        assert np.all(pmf.sample_prices(100, seed=2) == 3.0)


class TestMechanismABC:
    def test_run_samples_from_pmf(self, toy_instance):
        class FixedMechanism(Mechanism):
            name = "fixed"

            def price_pmf(self, instance):
                return make_pmf(
                    prices=(2.0,), probs=(1.0,), sets=((0, 1),),
                    n_workers=instance.n_workers,
                )

        outcome = FixedMechanism().run(toy_instance, seed=0)
        assert outcome.price == 2.0
        assert outcome.winners.tolist() == [0, 1]

    def test_repr_contains_name(self):
        class X(Mechanism):
            name = "x-mech"

            def price_pmf(self, instance):  # pragma: no cover - never called
                raise NotImplementedError

        assert "x-mech" in repr(X())
