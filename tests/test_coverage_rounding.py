"""Unit tests for repro.coverage.rounding (LP randomized rounding)."""

import numpy as np
import pytest

from repro.coverage.problem import CoverProblem
from repro.coverage.rounding import randomized_rounding_cover
from repro.exceptions import InfeasibleError


def random_problem(seed, n_items=20, n_constraints=5):
    rng = np.random.default_rng(seed)
    gains = rng.uniform(0, 1, (n_items, n_constraints))
    gains[rng.random(gains.shape) < 0.3] = 0.0
    demands = gains.sum(axis=0) * 0.4
    return CoverProblem(gains=gains, demands=demands)


class TestRandomizedRounding:
    @pytest.mark.parametrize("seed", range(5))
    def test_always_feasible(self, seed):
        p = random_problem(seed)
        result = randomized_rounding_cover(p, seed=seed)
        assert p.is_feasible(result.selection)

    def test_infeasible_rejected(self):
        p = CoverProblem(gains=np.full((2, 1), 0.1), demands=np.array([1.0]))
        with pytest.raises(InfeasibleError):
            randomized_rounding_cover(p)

    def test_reports_lp_objective(self):
        p = random_problem(0)
        result = randomized_rounding_cover(p, seed=0)
        assert result.lp_objective > 0
        assert result.size >= int(np.floor(result.lp_objective))

    def test_reproducible(self):
        p = random_problem(1)
        a = randomized_rounding_cover(p, seed=5)
        b = randomized_rounding_cover(p, seed=5)
        assert np.array_equal(a.selection, b.selection)

    def test_higher_inflation_selects_more(self):
        p = random_problem(2)
        sizes_low = [
            randomized_rounding_cover(p, inflation=1.0, seed=s).size for s in range(8)
        ]
        sizes_high = [
            randomized_rounding_cover(p, inflation=6.0, seed=s).size for s in range(8)
        ]
        assert np.mean(sizes_high) >= np.mean(sizes_low)

    def test_zero_demand_selects_little(self):
        p = CoverProblem(gains=np.ones((3, 2)), demands=np.zeros(2))
        result = randomized_rounding_cover(p, seed=0)
        assert result.size == 0

    def test_comparable_to_greedy(self):
        """Rounding is the same asymptotic class as greedy: sizes comparable."""
        from repro.coverage.greedy import greedy_cover

        ratios = []
        for seed in range(6):
            p = random_problem(seed)
            greedy = greedy_cover(p).size
            rounded = randomized_rounding_cover(p, seed=seed).size
            if greedy:
                ratios.append(rounded / greedy)
        assert np.mean(ratios) < 3.0

    def test_bad_inflation_rejected(self):
        p = random_problem(3)
        with pytest.raises(Exception):
            randomized_rounding_cover(p, inflation=0.0)
