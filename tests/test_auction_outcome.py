"""Unit tests for repro.auction.outcome."""

import numpy as np
import pytest

from repro.auction.outcome import AuctionOutcome
from repro.exceptions import ValidationError


class TestConstruction:
    def test_default_payments(self):
        out = AuctionOutcome(winners=[2, 0], price=5.0, n_workers=4)
        assert out.payments.tolist() == [5.0, 0.0, 5.0, 0.0]
        assert out.winners.tolist() == [0, 2]  # sorted

    def test_explicit_payments_kept(self):
        out = AuctionOutcome(
            winners=[0], price=5.0, n_workers=2, payments=np.array([4.0, 0.0])
        )
        assert out.payments.tolist() == [4.0, 0.0]

    def test_winner_out_of_range(self):
        with pytest.raises(ValidationError, match="out of range"):
            AuctionOutcome(winners=[5], price=1.0, n_workers=3)

    def test_duplicate_winner_rejected(self):
        with pytest.raises(ValidationError, match="unique"):
            AuctionOutcome(winners=[1, 1], price=1.0, n_workers=3)

    def test_negative_price_rejected(self):
        with pytest.raises(ValidationError, match="price"):
            AuctionOutcome(winners=[0], price=-1.0, n_workers=2)

    def test_payment_length_mismatch(self):
        with pytest.raises(ValidationError, match="workers"):
            AuctionOutcome(
                winners=[0], price=1.0, n_workers=2, payments=np.array([1.0])
            )

    def test_empty_winner_set_allowed(self):
        out = AuctionOutcome(winners=[], price=1.0, n_workers=2)
        assert out.n_winners == 0
        assert out.total_payment == 0.0


class TestDerived:
    def test_total_payment(self):
        out = AuctionOutcome(winners=[0, 1], price=3.0, n_workers=3)
        assert out.total_payment == 6.0

    def test_winner_set_and_is_winner(self):
        out = AuctionOutcome(winners=[1], price=3.0, n_workers=3)
        assert out.winner_set == frozenset({1})
        assert out.is_winner(1)
        assert not out.is_winner(0)

    def test_utility_winner_and_loser(self):
        out = AuctionOutcome(winners=[0], price=3.0, n_workers=2)
        assert out.utility(0, cost=1.0) == 2.0
        assert out.utility(1, cost=1.0) == 0.0

    def test_utility_can_be_negative_for_overpriced_cost(self):
        out = AuctionOutcome(winners=[0], price=3.0, n_workers=1)
        assert out.utility(0, cost=4.0) == -1.0

    def test_utilities_vector(self):
        out = AuctionOutcome(winners=[0, 2], price=3.0, n_workers=3)
        util = out.utilities(np.array([1.0, 1.0, 5.0]))
        assert util.tolist() == [2.0, 0.0, -2.0]

    def test_utilities_length_check(self):
        out = AuctionOutcome(winners=[0], price=3.0, n_workers=2)
        with pytest.raises(ValidationError, match="length"):
            out.utilities(np.array([1.0]))
