"""The lazy-sparse CELF kernel is pinned bit-for-bit against the dense one.

Every test here compares :func:`repro.coverage.lazy.lazy_sparse_greedy_cover`
(and :class:`~repro.coverage.lazy.LazyGreedyState`) against
:func:`repro.coverage.greedy.greedy_cover` on the same instance: same
winners, same selection order, same cover size, and the same
:class:`~repro.exceptions.InfeasibleError` verdict with the same message.
The hypothesis strategies deliberately hit the regimes where lazy
kernels classically diverge — duplicate-gain ties, near-degenerate
demands, arbitrary budget masks — and the degenerate shapes (empty
coverage, a single item, everything affordable).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.coverage.dispatch import (
    AUTO_SPARSE_MAX_DENSITY,
    AUTO_SPARSE_MIN_ITEMS,
    auto_cover_solver,
    resolve_cover_solver,
    use_lazy_kernel,
)
from repro.coverage.greedy import GreedyState, greedy_cover
from repro.coverage.lazy import LazyGreedyState, lazy_sparse_greedy_cover
from repro.coverage.problem import CoverProblem
from repro.coverage.sparse import SparseCoverage
from repro.exceptions import InfeasibleError, ValidationError


def assert_same_result(problem, budget_mask=None):
    """Dense and lazy agree exactly — result or infeasibility verdict."""
    try:
        dense = greedy_cover(problem, budget_mask=budget_mask)
    except InfeasibleError as exc:
        with pytest.raises(InfeasibleError) as caught:
            lazy_sparse_greedy_cover(problem, budget_mask=budget_mask)
        assert str(caught.value) == str(exc)
        return None
    lazy = lazy_sparse_greedy_cover(problem, budget_mask=budget_mask)
    assert lazy.order == dense.order
    assert np.array_equal(lazy.selection, dense.selection)
    assert lazy.size == dense.size
    return dense


def tie_problems(max_items=14, max_constraints=5):
    """Lattice-valued gains: duplicate marginal gains are the common case."""

    @st.composite
    def build(draw):
        n_items = draw(st.integers(1, max_items))
        n_constraints = draw(st.integers(1, max_constraints))
        gains = draw(
            arrays(
                dtype=np.float64,
                shape=(n_items, n_constraints),
                elements=st.sampled_from([0.0, 0.1, 0.25, 0.5, 0.75, 1.0]),
            )
        )
        demand_scale = draw(st.floats(0.1, 0.9))
        return CoverProblem(gains=gains, demands=gains.sum(axis=0) * demand_scale)

    return build()


def random_density_problems(max_items=30, max_constraints=8):
    """Continuous gains at a drawn density, possibly infeasible demands."""

    @st.composite
    def build(draw):
        n_items = draw(st.integers(1, max_items))
        n_constraints = draw(st.integers(1, max_constraints))
        density = draw(st.floats(0.0, 1.0))
        seed = draw(st.integers(0, 2**31 - 1))
        rng = np.random.default_rng(seed)
        gains = rng.uniform(0.1, 1.0, size=(n_items, n_constraints))
        gains[rng.random(gains.shape) >= density] = 0.0
        # demand_scale > 1 makes some instances infeasible on purpose:
        # the verdict (and its message) must match the dense kernel too.
        demand_scale = draw(st.floats(0.0, 1.3))
        return CoverProblem(gains=gains, demands=gains.sum(axis=0) * demand_scale)

    return build()


class TestBitForBitEquivalence:
    @given(problem=tie_problems())
    @settings(max_examples=80, deadline=None)
    def test_ties_resolve_identically(self, problem):
        assert_same_result(problem)

    @given(problem=random_density_problems())
    @settings(max_examples=80, deadline=None)
    def test_random_densities_match_including_infeasible(self, problem):
        assert_same_result(problem)

    @given(problem=random_density_problems(max_items=16), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_budget_masks_match(self, problem, data):
        mask = np.array(
            data.draw(
                st.lists(
                    st.booleans(),
                    min_size=problem.n_items,
                    max_size=problem.n_items,
                )
            )
        )
        assert_same_result(problem, budget_mask=mask)

    @given(problem=tie_problems(max_items=10))
    @settings(max_examples=40, deadline=None)
    def test_sparse_input_equals_dense_input(self, problem):
        sparse = SparseCoverage.from_problem(problem)
        try:
            dense = greedy_cover(problem)
        except InfeasibleError:
            with pytest.raises(InfeasibleError):
                lazy_sparse_greedy_cover(sparse)
            return
        lazy = lazy_sparse_greedy_cover(sparse)
        assert lazy.order == dense.order
        assert np.array_equal(lazy.selection, dense.selection)


class TestDegenerateInstances:
    def test_empty_coverage_zero_demands_selects_nothing(self):
        problem = CoverProblem(gains=np.zeros((4, 3)), demands=np.zeros(3))
        result = assert_same_result(problem)
        assert result.size == 0
        assert result.order == ()

    def test_empty_coverage_positive_demands_is_infeasible(self):
        problem = CoverProblem(gains=np.zeros((4, 3)), demands=np.ones(3))
        assert_same_result(problem)  # asserts matching InfeasibleError

    def test_single_item(self):
        problem = CoverProblem(gains=np.array([[0.5, 0.8]]), demands=np.array([0.4, 0.6]))
        result = assert_same_result(problem)
        assert result.order == (0,)

    def test_all_items_affordable_mask_equals_no_mask(self):
        rng = np.random.default_rng(5)
        gains = rng.uniform(0.0, 1.0, size=(12, 4))
        problem = CoverProblem(gains=gains, demands=gains.sum(axis=0) * 0.4)
        unmasked = lazy_sparse_greedy_cover(problem)
        masked = lazy_sparse_greedy_cover(
            problem, budget_mask=np.ones(12, dtype=bool)
        )
        assert masked.order == unmasked.order
        assert_same_result(problem, budget_mask=np.ones(12, dtype=bool))

    def test_empty_mask_is_infeasible_like_dense(self):
        problem = CoverProblem(gains=np.ones((3, 2)), demands=np.array([1.0, 1.0]))
        assert_same_result(problem, budget_mask=np.zeros(3, dtype=bool))


class TestLazyGreedyState:
    def test_state_reuse_matches_dense_state_across_masks(self):
        rng = np.random.default_rng(11)
        gains = rng.uniform(0.0, 1.0, size=(40, 6))
        gains[rng.random(gains.shape) >= 0.4] = 0.0
        problem = CoverProblem(gains=gains, demands=gains.sum(axis=0) * 0.35)
        lazy_state = LazyGreedyState(problem)
        dense_state = GreedyState(problem)
        for trial in range(8):
            mask = np.random.default_rng(trial).random(40) < 0.7
            try:
                dense = dense_state.solve(mask)
            except InfeasibleError as exc:
                with pytest.raises(InfeasibleError) as caught:
                    lazy_state.solve(mask)
                assert str(caught.value) == str(exc)
                continue
            lazy = lazy_state.solve(mask)
            assert lazy.order == dense.order
            assert np.array_equal(lazy.selection, dense.selection)

    def test_state_for_wrong_problem_is_rejected(self):
        a = CoverProblem(gains=np.ones((2, 2)), demands=np.array([0.5, 0.5]))
        b = CoverProblem(gains=np.ones((2, 2)), demands=np.array([0.5, 0.5]))
        state = LazyGreedyState(a)
        with pytest.raises(ValueError, match="different CoverProblem"):
            lazy_sparse_greedy_cover(b, state=state)

    def test_state_rejects_foreign_types(self):
        with pytest.raises(TypeError, match="CoverProblem or SparseCoverage"):
            LazyGreedyState(np.ones((2, 2)))


class TestSparseCoverage:
    @given(problem=tie_problems(max_items=10))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_preserves_the_instance(self, problem):
        sparse = SparseCoverage.from_problem(problem)
        back = sparse.to_problem()
        assert np.array_equal(back.gains, problem.gains)
        assert np.array_equal(back.demands, problem.demands)
        assert sparse.nnz == np.count_nonzero(problem.gains)

    def test_rows_and_shape_accessors(self):
        gains = np.array([[0.0, 0.3, 0.0], [0.7, 0.0, 0.2]])
        sparse = SparseCoverage.from_dense(gains, np.array([0.1, 0.1, 0.1]))
        assert (sparse.n_items, sparse.n_constraints, sparse.nnz) == (2, 3, 3)
        cols, vals = sparse.row(1)
        assert cols.tolist() == [0, 2]
        assert vals.tolist() == [0.7, 0.2]
        assert sparse.density == pytest.approx(0.5)
        assert sparse.nbytes > 0

    def test_validation_rejects_malformed_csr(self):
        demands = np.array([0.5, 0.5])
        with pytest.raises(ValidationError, match="start at 0 and end at nnz"):
            SparseCoverage(
                indptr=np.array([1, 2]),
                indices=np.array([0]),
                data=np.array([1.0]),
                demands=demands,
            )
        with pytest.raises(ValidationError, match="strictly increasing"):
            SparseCoverage(
                indptr=np.array([0, 2]),
                indices=np.array([1, 0]),
                data=np.array([1.0, 1.0]),
                demands=demands,
            )
        with pytest.raises(ValidationError, match="out of range"):
            SparseCoverage(
                indptr=np.array([0, 1]),
                indices=np.array([7]),
                data=np.array([1.0]),
                demands=demands,
            )
        with pytest.raises(ValidationError, match="non-negative"):
            SparseCoverage(
                indptr=np.array([0, 1]),
                indices=np.array([0]),
                data=np.array([-1.0]),
                demands=demands,
            )

    def test_arrays_are_read_only(self):
        sparse = SparseCoverage.from_dense(np.ones((2, 2)), np.ones(2))
        with pytest.raises(ValueError):
            sparse.data[0] = 2.0


class TestDispatch:
    def test_small_problems_stay_dense(self):
        problem = CoverProblem(gains=np.ones((8, 3)), demands=np.ones(3))
        assert not use_lazy_kernel(problem)

    def test_large_sparse_problems_go_lazy(self):
        n = AUTO_SPARSE_MIN_ITEMS
        gains = np.zeros((n, 100))
        gains[np.arange(n), np.arange(n) % 100] = 1.0  # density 0.01
        problem = CoverProblem(gains=gains, demands=gains.sum(axis=0) * 0.5)
        assert use_lazy_kernel(problem)

    def test_large_dense_problems_stay_dense(self):
        n = AUTO_SPARSE_MIN_ITEMS
        rng = np.random.default_rng(0)
        gains = rng.uniform(0.1, 1.0, size=(n, 10))  # density 1 > cutoff
        problem = CoverProblem(gains=gains, demands=gains.sum(axis=0) * 0.5)
        assert problem.n_items >= AUTO_SPARSE_MIN_ITEMS
        assert not use_lazy_kernel(problem)
        assert AUTO_SPARSE_MAX_DENSITY < 1.0

    def test_sparse_coverage_always_lazy(self):
        sparse = SparseCoverage.from_dense(np.ones((2, 2)), np.ones(2))
        assert use_lazy_kernel(sparse)

    @given(problem=tie_problems(max_items=10))
    @settings(max_examples=30, deadline=None)
    def test_auto_solver_is_bit_identical_to_dense(self, problem):
        try:
            dense = greedy_cover(problem)
        except InfeasibleError:
            with pytest.raises(InfeasibleError):
                auto_cover_solver(problem)
            return
        assert auto_cover_solver(problem).order == dense.order

    def test_resolver_names_and_passthrough(self):
        assert resolve_cover_solver("dense") is greedy_cover
        assert resolve_cover_solver("greedy") is greedy_cover
        assert resolve_cover_solver("lazy_sparse") is lazy_sparse_greedy_cover
        assert resolve_cover_solver("auto") is auto_cover_solver
        assert resolve_cover_solver(greedy_cover) is greedy_cover

    def test_resolver_rejects_unknown_names(self):
        with pytest.raises(ValidationError, match="unknown cover_solver"):
            resolve_cover_solver("simulated_annealing")
