"""Unit tests for repro.mechanisms.optimal."""

import numpy as np
import pytest

from repro.mechanisms.dp_hsrc import DPHSRCAuction
from repro.mechanisms.optimal import (
    OptimalSinglePriceMechanism,
    optimal_total_payment,
)
from repro.mechanisms.price_set import feasible_price_set, group_prices_by_candidates
from repro.coverage.exact import solve_exact
from repro.workloads.generator import generate_instance


class TestOptimalTotalPayment:
    def test_toy_instance_exact(self, toy_instance):
        # p=2: S_OPT={0,1} → payment 4; p=3: S_OPT={2} → payment 3.
        result = optimal_total_payment(toy_instance)
        assert result.price == 3.0
        assert result.winners.tolist() == [2]
        assert result.total_payment == 3.0
        assert result.certified

    def test_matches_brute_force(self, tiny_setting):
        """Pruning must not change the answer: compare with the naive loop."""
        instance, _ = generate_instance(tiny_setting, seed=0)
        result = optimal_total_payment(instance)

        prices = feasible_price_set(instance)
        best = np.inf
        for group in group_prices_by_candidates(instance, prices):
            size = solve_exact(group.problem).size
            payment = float(prices[group.price_indices[0]]) * size
            best = min(best, payment)
        assert result.total_payment == pytest.approx(best)

    @pytest.mark.parametrize("seed", range(3))
    def test_never_above_dp_hsrc_min_payment(self, tiny_setting, seed):
        instance, _ = generate_instance(tiny_setting, seed=seed)
        opt = optimal_total_payment(instance)
        pmf = DPHSRCAuction(epsilon=0.5).price_pmf(instance)
        assert opt.total_payment <= pmf.min_total_payment() + 1e-9

    def test_winner_set_is_feasible_and_affordable(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=1)
        result = optimal_total_payment(instance)
        coverage = instance.effective_quality[result.winners].sum(axis=0)
        assert np.all(coverage >= instance.demands - 1e-9)
        assert np.all(instance.prices[result.winners] <= result.price + 1e-9)

    def test_backends_agree(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=2)
        milp = optimal_total_payment(instance, backend="milp")
        bnb = optimal_total_payment(instance, backend="bnb")
        assert milp.total_payment == pytest.approx(bnb.total_payment)

    def test_reports_solve_count(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=3)
        result = optimal_total_payment(instance)
        assert result.n_exact_solves >= 1


class TestMechanismWrapper:
    def test_point_mass_pmf(self, toy_instance):
        pmf = OptimalSinglePriceMechanism().price_pmf(toy_instance)
        assert pmf.support_size == 1
        assert pmf.probabilities[0] == 1.0
        assert pmf.expected_total_payment() == 3.0

    def test_run_returns_the_optimum(self, toy_instance):
        outcome = OptimalSinglePriceMechanism().run(toy_instance, seed=0)
        assert outcome.price == 3.0
        assert outcome.winners.tolist() == [2]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            OptimalSinglePriceMechanism(backend="gurobi")
