"""Durability tests for the append-only JSON-lines budget backend.

Mirrors ``test_resilience_resume.py``: a batch killed mid-run (planned
crash fault) leaves a durable budget journal; reopening it reconstructs
the composed ε of every ``(tenant, principal)`` account bit-identically,
and completing the remaining work on the reopened store lands on exactly
the accounts of an uninterrupted run.
"""

import json

import pytest

from repro.bench import BatchAuctionRunner, seeded_auction_batch
from repro.exceptions import CheckpointError
from repro.mechanisms.dp_hsrc import DPHSRCAuction
from repro.privacy.budget import (
    BUDGET_SCHEMA,
    InMemoryBudgetStore,
    JsonlBudgetStore,
    use_budget_store,
)
from repro.resilience import FaultPlan

EPS = 0.1
N = 6
TENANTS = ["acme", "globex", "acme", "initech", "globex", "acme"]


def _run(store, instances, tenants, fault_plan=None):
    runner = BatchAuctionRunner(
        DPHSRCAuction(epsilon=EPS),
        backend="serial",
        fault_plan=fault_plan,
    )
    with use_budget_store(store):
        return runner.run(instances, seed=7, tenants=tenants)


class TestRoundTrip:
    def test_reopen_reproduces_composed_epsilon_exactly(self, tmp_path):
        path = tmp_path / "budget.jsonl"
        store = JsonlBudgetStore(path, limit=1.0)
        # Awkward floats on purpose: the repr-based encoder must
        # round-trip them bit-exactly, not approximately.
        store.charge("t", "p", mechanism="m", epsilon=0.1 + 0.2 / 7)
        store.charge("t", "p", mechanism="m", epsilon=1e-9, parallel=True)
        store.charge("t", "q", mechanism="m", epsilon=0.3, degraded=True)
        store.renew("t", "p", epoch=2)
        store.charge("t", "p", mechanism="m", epsilon=0.125)
        expected = store.snapshot()
        store.close()
        reopened = JsonlBudgetStore(path, limit=1.0)
        assert reopened.snapshot() == expected
        assert reopened.spent("t", "p") == 0.125
        assert reopened.account("t", "p").epoch == 2

    def test_schema_header_is_first_line(self, tmp_path):
        path = tmp_path / "budget.jsonl"
        with JsonlBudgetStore(path, limit=0.5) as store:
            store.charge("t", "p", mechanism="m", epsilon=0.1)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["type"] == "meta"
        assert header["schema"] == BUDGET_SCHEMA
        assert header["limit"] == 0.5

    def test_journaled_overspend_replays_without_raising(self, tmp_path):
        path = tmp_path / "budget.jsonl"
        store = JsonlBudgetStore(path, limit=0.5)
        store.charge("t", "p", mechanism="m", epsilon=0.4)
        with pytest.raises(Exception):
            store.charge("t", "p", mechanism="m", epsilon=0.4)
        store.close()
        # History already surfaced the overspend; replay reconstructs it.
        reopened = JsonlBudgetStore(path, limit=0.5)
        assert reopened.spent("t", "p") == pytest.approx(0.8)

    def test_open_for_audit_adopts_header_limits(self, tmp_path):
        path = tmp_path / "budget.jsonl"
        with JsonlBudgetStore(path, limit=0.75, limits={"vip": None}) as store:
            store.charge("t", "p", mechanism="m", epsilon=0.25)
        audit = JsonlBudgetStore.open_for_audit(path)
        assert audit.limit_for("t") == 0.75
        assert audit.limit_for("vip") is None
        assert audit.spent("t", "p") == pytest.approx(0.25)

    def test_open_for_audit_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            JsonlBudgetStore.open_for_audit(tmp_path / "absent.jsonl")


class TestCorruption:
    def test_torn_final_line_is_discarded(self, tmp_path):
        path = tmp_path / "budget.jsonl"
        with JsonlBudgetStore(path) as store:
            store.charge("t", "p", mechanism="m", epsilon=0.1)
            store.charge("t", "p", mechanism="m", epsilon=0.2)
        with path.open("a") as handle:
            handle.write('{"type": "charge", "tenant": "t", "epsi')  # killed mid-write
        reopened = JsonlBudgetStore(path)
        assert reopened.spent("t", "p") == pytest.approx(0.3)

    def test_charge_after_torn_tail_repairs_the_file(self, tmp_path):
        """Write-after-tear: the reopened store must truncate the torn
        partial line so post-crash charges land on their own lines —
        not merge into the tear and corrupt the journal mid-file."""
        path = tmp_path / "budget.jsonl"
        with JsonlBudgetStore(path) as store:
            store.charge("t", "p", mechanism="m", epsilon=0.1)
        with path.open("a") as handle:
            handle.write('{"type": "charge", "tenant": "t", "epsi')  # killed mid-write
        with JsonlBudgetStore(path) as store:
            store.charge("t", "p", mechanism="m", epsilon=0.2)
            store.charge("t", "p", mechanism="m", epsilon=0.4)
        with JsonlBudgetStore(path) as reopened:
            assert reopened.spent("t", "p") == pytest.approx(0.7)

    def test_torn_tail_with_newline_is_truncated_on_replay(self, tmp_path):
        """A torn line that kept its newline can't be caught by the
        last-byte check on append; replay must truncate it instead."""
        path = tmp_path / "budget.jsonl"
        with JsonlBudgetStore(path) as store:
            store.charge("t", "p", mechanism="m", epsilon=0.1)
        with path.open("a") as handle:
            handle.write('{"type": "charge", "tenant": "t", "epsi\n')
        with JsonlBudgetStore(path) as store:
            store.charge("t", "p", mechanism="m", epsilon=0.2)
        with JsonlBudgetStore(path) as reopened:
            assert reopened.spent("t", "p") == pytest.approx(0.3)

    def test_append_without_prior_replay_repairs_torn_tail(self, tmp_path):
        """The journal repairs on append even when nothing replayed
        first (the sweep checkpoint's append path)."""
        from repro.resilience import JsonlJournal

        path = tmp_path / "j.jsonl"
        journal = JsonlJournal(path, schema="test/1", label="test journal")
        journal.append({"type": "point", "x": 1})
        with path.open("a") as handle:
            handle.write('{"type": "point", "x"')  # killed mid-write
        journal.append({"type": "point", "x": 2})
        assert [obj["x"] for _, obj in journal.replay()] == [1, 2]

    def test_contradicting_limit_refuses_resume(self, tmp_path):
        path = tmp_path / "budget.jsonl"
        with JsonlBudgetStore(path, limit=0.5) as store:
            store.charge("t", "p", mechanism="m", epsilon=0.1)
        with pytest.raises(CheckpointError, match="limit"):
            JsonlBudgetStore(path, limit=0.7)

    def test_unknown_event_type_raises(self, tmp_path):
        path = tmp_path / "budget.jsonl"
        with JsonlBudgetStore(path) as store:
            store.charge("t", "p", mechanism="m", epsilon=0.1)
        with path.open("a") as handle:
            handle.write('{"type": "withdraw", "tenant": "t"}\n')
            handle.write('{"type": "charge", "tenant": "t", "principal": "p", '
                         '"epsilon": 0.1}\n')
        with pytest.raises(CheckpointError, match="unknown type"):
            JsonlBudgetStore(path)

    def test_malformed_charge_event_raises(self, tmp_path):
        path = tmp_path / "budget.jsonl"
        with JsonlBudgetStore(path) as store:
            store.charge("t", "p", mechanism="m", epsilon=0.1)
        with path.open("a") as handle:
            handle.write('{"type": "charge", "tenant": "t"}\n')
            handle.write('{"type": "charge", "tenant": "t", "principal": "p", '
                         '"epsilon": 0.1}\n')
        with pytest.raises(CheckpointError, match="bad charge event"):
            JsonlBudgetStore(path)


class TestCrashAndResume:
    def test_kill_mid_batch_then_replay_equals_uninterrupted(self, tmp_path):
        instances = seeded_auction_batch(N, n_workers=20, n_tasks=4, seed=3)

        # Golden: the uninterrupted multi-tenant batch.
        golden = JsonlBudgetStore(tmp_path / "golden.jsonl")
        _run(golden, instances, TENANTS)
        golden.close()

        # The "crash": a planned fault kills instance 3, which therefore
        # never charges; every other charge is durably journaled.
        crash_path = tmp_path / "crashed.jsonl"
        live = JsonlBudgetStore(crash_path)
        result = _run(live, instances, TENANTS, fault_plan=FaultPlan.parse("crash@3"))
        assert [err.index for err in result.failed] == [3]
        live_state = live.snapshot()
        live.close()
        del live  # the process is gone; only the journal survives

        # Replay reconstructs the crashed process's state bit-exactly.
        reopened = JsonlBudgetStore(crash_path)
        assert reopened.snapshot() == live_state

        # Resume: the quarantined instance completes on the reopened
        # store and the final accounts equal the uninterrupted run's.
        _run(reopened, [instances[3]], [TENANTS[3]])
        assert reopened.snapshot() == JsonlBudgetStore.open_for_audit(
            tmp_path / "golden.jsonl"
        ).snapshot()
        reopened.close()

    def test_journal_before_apply_ordering(self, tmp_path):
        """A charge is journaled before it lands in memory, so a kill
        between the two steps can only lose in-memory state that replay
        rebuilds — never a journaled-but-unapplied charge."""
        path = tmp_path / "budget.jsonl"
        store = JsonlBudgetStore(path)
        # Simulate the kill window: the journal has the event, the
        # in-memory store never saw it.
        store._journal.append(
            {"type": "charge", "tenant": "t", "principal": "p",
             "mechanism": "m", "epsilon": 0.25, "sensitivity": 1.0,
             "composition": "sequential", "degraded": False}
        )
        assert store.spent("t", "p") == 0.0  # memory is behind...
        store.close()
        assert JsonlBudgetStore(path).spent("t", "p") == 0.25  # ...replay is not

    def test_fsync_batching_survives_flush(self, tmp_path):
        path = tmp_path / "budget.jsonl"
        store = JsonlBudgetStore(path, fsync_every=100)
        for _ in range(7):
            store.charge("t", "p", mechanism="m", epsilon=0.1)
        store.flush()
        store.close()
        assert JsonlBudgetStore(path).spent("t", "p") == pytest.approx(0.7)


class TestConcurrency:
    def test_concurrent_charges_replay_to_the_same_state(self, tmp_path):
        """The store's lock serializes journal append + in-memory apply
        as one unit, so threads neither interleave partial lines nor
        journal events in an order the memory state never saw — replay
        reproduces the live snapshot bit-identically."""
        import threading

        path = tmp_path / "budget.jsonl"
        store = JsonlBudgetStore(path, fsync_every=64)

        def worker(tenant):
            for _ in range(50):
                store.charge(tenant, "p", mechanism="m", epsilon=0.01)
                store.charge("shared", "p", mechanism="m", epsilon=0.01)

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        live = store.snapshot()
        store.close()
        with JsonlBudgetStore(path) as reopened:
            assert reopened.snapshot() == live
            assert reopened.spent("shared", "p") == pytest.approx(4 * 50 * 0.01)


class TestParityWithInMemory:
    def test_journal_and_memory_agree_on_every_query(self, tmp_path):
        memory = InMemoryBudgetStore(limit=2.0)
        journal = JsonlBudgetStore(tmp_path / "b.jsonl", limit=2.0)
        for store in (memory, journal):
            store.charge("a", "x", mechanism="m", epsilon=0.5)
            store.charge("a", "x", mechanism="m", epsilon=0.25, parallel=True)
            store.charge("b", "y", mechanism="m", epsilon=0.125, degraded=True)
            store.renew("b", "y")
        journal.close()
        assert journal.snapshot() == memory.snapshot()
        assert journal.spent("a", "x") == memory.spent("a", "x")
        assert journal.remaining("a", "x") == memory.remaining("a", "x")
