"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils import validation


class TestRequire:
    def test_passes_on_true(self):
        validation.require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValidationError, match="broken"):
            validation.require(False, "broken")


class TestScalarChecks:
    def test_positive_accepts(self):
        validation.require_positive(0.1, "x")

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_positive_rejects(self, bad):
        with pytest.raises(ValidationError, match="x"):
            validation.require_positive(bad, "x")

    def test_nonnegative_accepts_zero(self):
        validation.require_nonnegative(0.0, "x")

    def test_nonnegative_rejects_negative(self):
        with pytest.raises(ValidationError):
            validation.require_nonnegative(-0.001, "x")

    def test_probability_closed_interval(self):
        validation.require_probability(0.0, "p")
        validation.require_probability(1.0, "p")

    def test_probability_open_interval_rejects_endpoints(self):
        with pytest.raises(ValidationError):
            validation.require_probability(0.0, "p", open_interval=True)
        with pytest.raises(ValidationError):
            validation.require_probability(1.0, "p", open_interval=True)

    def test_probability_rejects_outside(self):
        with pytest.raises(ValidationError):
            validation.require_probability(1.5, "p")


class TestArrayChecks:
    def test_unit_interval_accepts(self):
        validation.require_in_unit_interval(np.array([0.0, 0.5, 1.0]), "a")

    def test_unit_interval_rejects(self):
        with pytest.raises(ValidationError, match="a"):
            validation.require_in_unit_interval(np.array([0.5, 1.1]), "a")

    def test_unit_interval_empty_ok(self):
        validation.require_in_unit_interval(np.array([]), "a")

    def test_require_shape(self):
        validation.require_shape(np.zeros((2, 3)), (2, 3), "m")
        with pytest.raises(ValidationError, match="shape"):
            validation.require_shape(np.zeros((3, 2)), (2, 3), "m")


class TestAsFloatArray:
    def test_copies_input(self):
        src = np.array([1.0, 2.0])
        out = validation.as_float_array(src, "a")
        out[0] = 99.0
        assert src[0] == 1.0

    def test_casts_ints(self):
        out = validation.as_float_array([1, 2], "a")
        assert out.dtype == np.float64

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="finite"):
            validation.as_float_array([1.0, float("nan")], "a")

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValidationError, match="1-dimensional"):
            validation.as_float_array([[1.0]], "a", ndim=1)


class TestAsSortedUnique:
    def test_sorts_and_dedups(self):
        out = validation.as_sorted_unique([3.0, 1.0, 3.0, 2.0], "a")
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_empty_passthrough(self):
        assert validation.as_sorted_unique([], "a").size == 0
