"""Property-based tests for the mechanisms on randomly generated markets.

These drive whole random instances (via a hypothesis-chosen seed into the
workload generator, keeping instance structure realistic) through the
mechanisms and assert the paper's invariants on every outcome.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mechanisms.baseline import BaselineAuction
from repro.mechanisms.dp_hsrc import DPHSRCAuction
from repro.privacy.leakage import pmf_max_log_ratio
from repro.workloads.generator import generate_instance, matched_neighbor
from repro.workloads.settings import SimulationSetting

TINY = SimulationSetting(
    name="prop",
    epsilon=0.5,
    c_min=1.0,
    c_max=10.0,
    bundle_size=(3, 5),
    skill_range=(0.3, 0.95),
    error_threshold_range=(0.3, 0.5),
    n_workers=20,
    n_tasks=5,
    price_range=(4.0, 10.0),
    grid_step=0.5,
)


class TestMechanismInvariants:
    @given(seed=st.integers(0, 10_000), epsilon=st.floats(0.05, 20.0))
    @settings(max_examples=30, deadline=None)
    def test_dp_hsrc_outcome_invariants(self, seed, epsilon):
        instance, _pool = generate_instance(TINY, seed=seed)
        pmf = DPHSRCAuction(epsilon=epsilon).price_pmf(instance)
        # 1. probabilities are a distribution
        assert pmf.probabilities.sum() == pytest.approx(1.0)
        # 2. every support outcome is feasible and individually rational
        for k in range(pmf.support_size):
            winners = pmf.winner_sets[k]
            coverage = instance.effective_quality[winners].sum(axis=0)
            assert np.all(coverage >= instance.demands - 1e-9)
            assert np.all(instance.prices[winners] <= pmf.prices[k] + 1e-9)
        # 3. payment identity R = p·|S|
        assert np.allclose(pmf.total_payments, pmf.prices * pmf.cover_sizes)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_dp_hsrc_weakly_beats_baseline_per_price(self, seed):
        """At every shared support price, adaptive greedy winner sets are
        no larger than the baseline's static-order sets."""
        instance, _pool = generate_instance(TINY, seed=seed)
        dp = DPHSRCAuction(epsilon=0.5).price_pmf(instance)
        base = BaselineAuction(epsilon=0.5).price_pmf(instance)
        assert np.allclose(dp.prices, base.prices)
        # The adaptive rule is not *pointwise* dominant in theory, but the
        # aggregate payment comparison is the paper's claim:
        assert dp.expected_total_payment() <= base.expected_total_payment() * 1.10

    @given(seed=st.integers(0, 10_000), epsilon=st.floats(0.05, 2.0))
    @settings(max_examples=15, deadline=None)
    def test_theorem2_on_random_neighbors(self, seed, epsilon):
        instance, _pool = generate_instance(TINY, seed=seed)
        auction = DPHSRCAuction(epsilon=epsilon)
        base = auction.price_pmf(instance)
        rng = np.random.default_rng(seed)
        worker = int(rng.integers(instance.n_workers))
        try:
            neighbor = matched_neighbor(instance, TINY, worker, seed=rng)
        except Exception:
            return  # no support-matched neighbor found; nothing to check
        ratio = pmf_max_log_ratio(base, auction.price_pmf(neighbor))
        assert ratio <= epsilon + 1e-9

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_sampled_outcomes_come_from_support(self, seed):
        instance, _pool = generate_instance(TINY, seed=seed)
        pmf = DPHSRCAuction(epsilon=0.5).price_pmf(instance)
        outcome = pmf.sample_outcome(seed=seed)
        idx = int(np.searchsorted(pmf.prices, outcome.price))
        assert pmf.prices[idx] == outcome.price
        assert outcome.winners.tolist() == pmf.winner_sets[idx].tolist()
