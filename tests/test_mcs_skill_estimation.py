"""Unit tests for repro.mcs.skill_estimation."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mcs.sensing import collect_labels
from repro.mcs.skill_estimation import (
    estimate_skills_dawid_skene,
    estimate_skills_from_gold,
)


class TestGoldEstimation:
    def test_perfect_worker(self):
        labels = np.array([[1, -1, 1, -1]])
        gold = np.array([1, -1, 1, -1])
        est = estimate_skills_from_gold(labels, gold, smoothing=0.0)
        assert est[0, 0] == 1.0

    def test_smoothing_pulls_to_half(self):
        labels = np.array([[1]])
        gold = np.array([1])
        est = estimate_skills_from_gold(labels, gold, smoothing=1.0)
        assert est[0, 0] == pytest.approx(2 / 3)

    def test_unlabelled_worker_gets_prior(self):
        labels = np.array([[0, 0]])
        gold = np.array([1, -1])
        est = estimate_skills_from_gold(labels, gold)
        assert est[0, 0] == pytest.approx(0.5)

    def test_broadcast_width(self):
        labels = np.array([[1, 1]])
        gold = np.array([1, 1])
        est = estimate_skills_from_gold(labels, gold, n_tasks=7)
        assert est.shape == (1, 7)
        assert np.allclose(est[0], est[0, 0])

    def test_recovers_planted_accuracy(self):
        rng = np.random.default_rng(0)
        theta = 0.8
        gold = rng.choice((-1, 1), size=2000)
        skills = np.full((1, 2000), theta)
        labels = collect_labels(skills, gold, np.ones_like(skills, bool), seed=rng)
        est = estimate_skills_from_gold(labels, gold)
        assert est[0, 0] == pytest.approx(theta, abs=0.03)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="match"):
            estimate_skills_from_gold(np.array([[1, 1]]), np.array([1]))

    def test_bad_gold_values_rejected(self):
        with pytest.raises(ValidationError):
            estimate_skills_from_gold(np.array([[1]]), np.array([0]))


class TestDawidSkeneEstimation:
    def test_shape(self):
        rng = np.random.default_rng(1)
        truth = rng.choice((-1, 1), size=40)
        skills = rng.uniform(0.6, 0.95, size=(8, 1)) * np.ones((1, 40))
        labels = collect_labels(skills, truth, np.ones_like(skills, bool), seed=rng)
        est = estimate_skills_dawid_skene(labels, n_tasks=10)
        assert est.shape == (8, 10)

    def test_values_in_unit_interval(self):
        rng = np.random.default_rng(2)
        truth = rng.choice((-1, 1), size=40)
        skills = np.full((5, 40), 0.7)
        labels = collect_labels(skills, truth, np.ones_like(skills, bool), seed=rng)
        est = estimate_skills_dawid_skene(labels)
        assert np.all((0 < est) & (est < 1))
