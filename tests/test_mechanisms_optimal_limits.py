"""Tests for the optimal benchmark's resource-limit behaviour."""

import numpy as np
import pytest

from repro.mechanisms.optimal import optimal_total_payment
from repro.workloads.generator import generate_instance


class TestMaxExactSolves:
    def test_cap_flips_certified_flag(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=0)
        unlimited = optimal_total_payment(instance)
        if unlimited.n_exact_solves <= 1:
            pytest.skip("instance pruned to a single solve; cap cannot bind")
        capped = optimal_total_payment(instance, max_exact_solves=1)
        assert capped.n_exact_solves == 1
        assert not capped.certified

    def test_capped_result_is_upper_bound(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=1)
        exact = optimal_total_payment(instance)
        capped = optimal_total_payment(instance, max_exact_solves=1)
        assert capped.total_payment >= exact.total_payment - 1e-9

    def test_generous_cap_changes_nothing(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=2)
        exact = optimal_total_payment(instance)
        capped = optimal_total_payment(instance, max_exact_solves=10_000)
        assert capped.total_payment == pytest.approx(exact.total_payment)
        assert capped.certified == exact.certified

    def test_capped_winner_set_still_feasible(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=3)
        capped = optimal_total_payment(instance, max_exact_solves=1)
        coverage = instance.effective_quality[capped.winners].sum(axis=0)
        assert np.all(coverage >= instance.demands - 1e-9)


class TestPlatformRecordedSkills:
    def test_aggregation_uses_supplied_record(self, tiny_setting):
        """Aggregating with an inverted record flips the weighted votes."""
        from repro.mcs.platform import Platform
        from repro.mcs.tasks import TaskSet
        from repro.mechanisms.dp_hsrc import DPHSRCAuction
        from repro.workloads.generator import generate_worker_population

        roomy = tiny_setting.with_population(n_workers=50)
        pool = generate_worker_population(roomy, seed=4)
        tasks = TaskSet.random(pool.n_tasks, (0.3, 0.5), seed=5)
        instance = pool.to_instance(
            error_thresholds=tasks.error_thresholds,
            price_grid=tiny_setting.price_grid(),
            c_min=tiny_setting.c_min,
            c_max=tiny_setting.c_max,
        )
        platform = Platform(DPHSRCAuction(epsilon=0.5))
        honest = platform.run_round(pool, tasks, instance, seed=6)
        inverted = platform.run_round(
            pool, tasks, instance, seed=6, recorded_skills=1.0 - pool.skills
        )
        # Same labels (same seed), opposite weights → opposite aggregates.
        assert np.array_equal(honest.labels, inverted.labels)
        assert np.array_equal(honest.aggregated, -inverted.aggregated)
        assert honest.accuracy == pytest.approx(1.0 - inverted.accuracy)
