"""Unit tests for repro.privacy.laplace and repro.privacy.composition."""

import numpy as np
import pytest

from repro.privacy.composition import PrivacyAccountant
from repro.privacy.laplace import laplace_mechanism, laplace_scale


class TestLaplaceScale:
    def test_formula(self):
        assert laplace_scale(2.0, 0.5) == 4.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(Exception):
            laplace_scale(0.0, 1.0)
        with pytest.raises(Exception):
            laplace_scale(1.0, -1.0)


class TestLaplaceMechanism:
    def test_scalar_in_scalar_out(self):
        out = laplace_mechanism(10.0, sensitivity=1.0, epsilon=1.0, seed=0)
        assert isinstance(out, float)

    def test_array_shape_preserved(self):
        out = laplace_mechanism(np.zeros(5), 1.0, 1.0, seed=0)
        assert out.shape == (5,)

    def test_unbiased(self):
        rng = np.random.default_rng(0)
        noisy = laplace_mechanism(np.full(200_000, 7.0), 1.0, 1.0, seed=rng)
        assert np.mean(noisy) == pytest.approx(7.0, abs=0.05)

    def test_noise_scales_with_budget(self):
        tight = laplace_mechanism(np.zeros(100_000), 1.0, 10.0, seed=1)
        loose = laplace_mechanism(np.zeros(100_000), 1.0, 0.1, seed=1)
        assert np.std(loose) > np.std(tight)

    def test_deterministic_with_seed(self):
        a = laplace_mechanism(0.0, 1.0, 1.0, seed=3)
        b = laplace_mechanism(0.0, 1.0, 1.0, seed=3)
        assert a == b


class TestPrivacyAccountant:
    def test_sequential_adds(self):
        acc = PrivacyAccountant()
        acc.spend(0.1)
        acc.spend(0.2)
        assert acc.spent == pytest.approx(0.3)

    def test_parallel_takes_max(self):
        acc = PrivacyAccountant()
        acc.spend(0.1, parallel=True)
        acc.spend(0.3, parallel=True)
        acc.spend(0.2, parallel=True)
        assert acc.spent == pytest.approx(0.3)

    def test_mixed_composition(self):
        acc = PrivacyAccountant()
        acc.spend(0.1)
        acc.spend(0.5, parallel=True)
        assert acc.spent == pytest.approx(0.6)

    def test_budget_enforced(self):
        acc = PrivacyAccountant(budget=0.25)
        acc.spend(0.2)
        with pytest.raises(ValueError, match="exceed"):
            acc.spend(0.1)
        # Failed spend must not be recorded.
        assert acc.spent == pytest.approx(0.2)

    def test_remaining(self):
        acc = PrivacyAccountant(budget=1.0)
        acc.spend(0.4)
        assert acc.remaining == pytest.approx(0.6)

    def test_remaining_none_without_budget(self):
        assert PrivacyAccountant().remaining is None

    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(Exception):
            PrivacyAccountant().spend(0.0)

    def test_rejects_bad_budget(self):
        with pytest.raises(Exception):
            PrivacyAccountant(budget=-1.0)
