"""Unit tests for repro.analysis.dp_verification (Theorem 2 audits)."""

import pytest

from repro.analysis.dp_verification import dp_audit
from repro.mechanisms.baseline import BaselineAuction
from repro.mechanisms.dp_hsrc import DPHSRCAuction
from repro.workloads.generator import generate_instance


class TestDPAudit:
    @pytest.mark.parametrize("mechanism_cls", [DPHSRCAuction, BaselineAuction])
    def test_empirical_epsilon_within_budget(self, tiny_setting, mechanism_cls):
        epsilon = tiny_setting.epsilon
        instance, _ = generate_instance(tiny_setting, seed=0)
        report = dp_audit(
            mechanism_cls(epsilon=epsilon),
            instance,
            tiny_setting,
            epsilon,
            n_neighbors=5,
            seed=1,
        )
        assert report.satisfied
        assert report.empirical_epsilon <= epsilon + 1e-9
        assert report.n_neighbors == 5

    def test_leakage_nonnegative_and_reported_per_neighbor(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=2)
        report = dp_audit(
            DPHSRCAuction(epsilon=0.5), instance, tiny_setting, 0.5,
            n_neighbors=4, seed=3,
        )
        assert len(report.kl_leakages) == 4
        assert all(l >= 0 for l in report.kl_leakages)
        assert report.mean_kl_leakage >= 0

    def test_larger_epsilon_leaks_more(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=4)
        small = dp_audit(
            DPHSRCAuction(epsilon=0.1), instance, tiny_setting, 0.1,
            n_neighbors=5, seed=5,
        )
        large = dp_audit(
            DPHSRCAuction(epsilon=20.0), instance, tiny_setting, 20.0,
            n_neighbors=5, seed=5,
        )
        assert large.mean_kl_leakage >= small.mean_kl_leakage

    def test_zero_neighbors_degenerate(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=6)
        report = dp_audit(
            DPHSRCAuction(epsilon=0.5), instance, tiny_setting, 0.5,
            n_neighbors=0, seed=7,
        )
        assert report.empirical_epsilon == 0.0
        assert report.mean_kl_leakage == 0.0
