"""Tests for the cross-cell campaign report (schema repro-campaign/1)."""

import json

from repro.campaign import (
    CAMPAIGN_REPORT_SCHEMA,
    CampaignSpec,
    CellSpec,
    build_report,
    encode_result,
    render_report,
    report_json,
)
from repro.experiments.runner import ExperimentResult


def _result(name, rows, headers=("x", "y")):
    return ExperimentResult(
        name=name, title=f"title {name}", headers=list(headers), rows=rows
    )


def _spec(*cells):
    return CampaignSpec(name="rep", cells=cells, seed=7, fast=True)


class TestBuildReport:
    def test_schema_and_counts(self):
        spec = _spec(
            CellSpec(name="a", kind="experiment"),
            CellSpec(name="b", kind="experiment"),
        )
        payloads = {"a": encode_result(_result("a", [(1, 2.0)]))}
        doc = build_report(spec, payloads)
        assert doc["schema"] == CAMPAIGN_REPORT_SCHEMA
        assert doc["campaign"] == "rep"
        assert doc["seed"] == 7 and doc["fast"] is True
        assert doc["n_cells"] == 2 and doc["n_done"] == 1
        by_name = {c["name"]: c for c in doc["cells"]}
        assert by_name["a"]["status"] == "done"
        assert by_name["b"]["status"] == "pending"
        assert by_name["b"]["result"] is None

    def test_cells_listed_in_spec_order(self):
        spec = _spec(
            CellSpec(name="z", kind="experiment"),
            CellSpec(name="a", kind="experiment"),
        )
        doc = build_report(spec, {})
        assert [c["name"] for c in doc["cells"]] == ["z", "a"]

    def test_report_json_is_deterministic_bytes(self):
        spec = _spec(CellSpec(name="a", kind="experiment"))
        payloads = {"a": encode_result(_result("a", [(1, 0.1 + 0.2)]))}
        text1 = report_json(build_report(spec, payloads))
        text2 = report_json(build_report(spec, dict(payloads)))
        assert text1 == text2
        assert text1.endswith("\n")
        json.loads(text1)  # valid JSON


class TestRenderReport:
    def test_summary_and_per_cell_tables(self):
        spec = _spec(
            CellSpec(name="a", kind="experiment"),
            CellSpec(name="b", kind="experiment"),
        )
        payloads = {"a": encode_result(_result("a", [(1, 2.0)]))}
        text = render_report(build_report(spec, payloads))
        assert "Campaign rep — 1/2 cells done" in text
        assert "title a" in text
        assert "[b] pending — run or resume the campaign" in text

    def test_comparison_groups_shared_headers(self):
        spec = _spec(
            CellSpec(name="a", kind="experiment"),
            CellSpec(name="b", kind="experiment"),
            CellSpec(name="c", kind="experiment"),
        )
        payloads = {
            "a": encode_result(_result("a", [(1, 2.0)])),
            "b": encode_result(_result("b", [(3, 4.0)])),
            # A different header set must not join the comparison group.
            "c": encode_result(_result("c", [(5,)], headers=("z",))),
        }
        text = render_report(build_report(spec, payloads))
        assert "Cross-cell comparison (2 cells share these columns)" in text
        # The combined table prefixes each row with its cell name.
        comparison = text.split("Cross-cell comparison")[1]
        per_cell = comparison.split("title a")[0]
        assert "a" in per_cell and "b" in per_cell

    def test_no_comparison_for_singletons(self):
        spec = _spec(CellSpec(name="a", kind="experiment"))
        payloads = {"a": encode_result(_result("a", [(1, 2.0)]))}
        text = render_report(build_report(spec, payloads))
        assert "Cross-cell comparison" not in text

    def test_render_is_pure_function_of_payloads(self):
        spec = _spec(
            CellSpec(name="a", kind="experiment"),
            CellSpec(name="b", kind="experiment"),
        )
        payloads = {
            "a": encode_result(_result("a", [(1, 2.0)])),
            "b": encode_result(_result("b", [(3, float("inf"))])),
        }
        # Round-tripping payloads through JSON (as the checkpoint does)
        # must not change a byte of the report.
        replayed = json.loads(json.dumps(payloads))
        assert render_report(build_report(spec, replayed)) == render_report(
            build_report(spec, payloads)
        )
