"""Property-based tests for the aggregation substrate (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.aggregation.error_bounds import (
    achieved_error_bound,
    coverage_demands,
    quality_matrix,
)
from repro.aggregation.majority import majority_vote
from repro.aggregation.weighted import weighted_aggregate, weighted_scores


def skill_matrices(max_workers=8, max_tasks=6):
    return arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, max_workers), st.integers(1, max_tasks)),
        elements=st.floats(0.0, 1.0),
    )


def label_matrices_like(skills_strategy):
    @st.composite
    def build(draw):
        skills = draw(skills_strategy)
        labels = draw(
            arrays(
                dtype=np.int64,
                shape=skills.shape,
                elements=st.sampled_from([-1, 0, 1]),
            )
        )
        return labels, skills

    return build()


class TestQualityProperties:
    @given(skills=skill_matrices())
    @settings(max_examples=80, deadline=None)
    def test_quality_in_unit_interval(self, skills):
        q = quality_matrix(skills)
        assert np.all((0 <= q) & (q <= 1))

    @given(skills=skill_matrices())
    @settings(max_examples=80, deadline=None)
    def test_quality_symmetric_around_half(self, skills):
        q1 = quality_matrix(skills)
        q2 = quality_matrix(1.0 - skills)
        assert np.allclose(q1, q2)

    @given(delta=st.floats(0.001, 0.999))
    @settings(max_examples=80, deadline=None)
    def test_demand_roundtrip(self, delta):
        demand = coverage_demands([delta])[0]
        assert achieved_error_bound(demand) == pytest.approx(delta, rel=1e-9)


class TestAggregationProperties:
    @given(pair=label_matrices_like(skill_matrices()))
    @settings(max_examples=80, deadline=None)
    def test_output_always_pm_one(self, pair):
        labels, skills = pair
        out = weighted_aggregate(labels, skills)
        assert np.all(np.isin(out, (-1, 1)))

    @given(pair=label_matrices_like(skill_matrices()))
    @settings(max_examples=80, deadline=None)
    def test_label_flip_flips_scores(self, pair):
        """Negating every label negates every weighted score."""
        labels, skills = pair
        assert np.allclose(
            weighted_scores(labels, skills), -weighted_scores(-labels, skills)
        )

    @given(pair=label_matrices_like(skill_matrices()))
    @settings(max_examples=80, deadline=None)
    def test_skill_reflection_flips_scores(self, pair):
        """θ → 1−θ negates the weights, hence the scores."""
        labels, skills = pair
        assert np.allclose(
            weighted_scores(labels, skills),
            -weighted_scores(labels, 1.0 - skills),
        )

    @given(pair=label_matrices_like(skill_matrices()))
    @settings(max_examples=80, deadline=None)
    def test_majority_equals_weighted_at_uniform_skill(self, pair):
        """With identical above-half skills the two rules agree (same tie rule)."""
        labels, _ = pair
        uniform = np.full(labels.shape, 0.8)
        assert np.array_equal(
            majority_vote(labels), weighted_aggregate(labels, uniform)
        )

    @given(pair=label_matrices_like(skill_matrices()))
    @settings(max_examples=60, deadline=None)
    def test_adding_silent_worker_changes_nothing(self, pair):
        labels, skills = pair
        labels2 = np.vstack([labels, np.zeros((1, labels.shape[1]), dtype=int)])
        skills2 = np.vstack([skills, np.full((1, skills.shape[1]), 0.7)])
        assert np.array_equal(
            weighted_aggregate(labels, skills), weighted_aggregate(labels2, skills2)
        )
