"""Equivalence suite: vectorized kernels vs the retained references.

The vectorized :func:`repro.coverage.greedy.greedy_cover` and
:func:`~repro.coverage.greedy.static_order_cover` promise *bit-for-bit*
agreement with the executable-spec implementations in
:mod:`repro.coverage.reference` — identical ``selection`` **and**
``order``, not just equal cover sizes.  This file enforces that promise
on hundreds of seeded random instances, checks the Lemma 2 bound against
certified-optimal covers on small instances, and pins the documented
tie-breaking rule with adversarially near-equal gains.
"""

import numpy as np
import pytest

from repro.coverage.bounds import greedy_approximation_factor
from repro.coverage.exact import solve_exact
from repro.coverage.greedy import _TOL, greedy_cover, static_order_cover
from repro.coverage.problem import CoverProblem
from repro.coverage.reference import (
    reference_greedy_cover,
    reference_static_order_cover,
)
from repro.exceptions import InfeasibleError

N_EQUIVALENCE_SEEDS = 220


def random_problem(seed: int) -> CoverProblem:
    """A seeded random multicover instance with varied shape and sparsity.

    Every seventh seed zeroes one demand (exercising the satisfied-from-
    the-start path); every eleventh uses dense gains.
    """
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 45))
    k = int(rng.integers(1, 9))
    gains = rng.uniform(0.0, 1.0, (n, k))
    if seed % 11 != 0:
        gains[rng.random((n, k)) < 0.4] = 0.0
    demands = gains.sum(axis=0) * float(rng.uniform(0.1, 0.9))
    if seed % 7 == 0 and k > 1:
        demands[int(rng.integers(k))] = 0.0
    return CoverProblem(gains=gains, demands=demands)


class TestGreedyEquivalence:
    @pytest.mark.parametrize("seed", range(N_EQUIVALENCE_SEEDS))
    def test_selection_and_order_identical(self, seed):
        problem = random_problem(seed)
        vectorized = greedy_cover(problem)
        reference = reference_greedy_cover(problem)
        assert vectorized.order == reference.order
        assert vectorized.selection.tolist() == reference.selection.tolist()
        assert problem.is_feasible(vectorized.selection)

    @pytest.mark.parametrize("seed", range(0, 40))
    def test_static_order_identical(self, seed):
        problem = random_problem(seed)
        vectorized = static_order_cover(problem)
        reference = reference_static_order_cover(problem)
        assert vectorized.order == reference.order
        assert vectorized.selection.tolist() == reference.selection.tolist()

    @pytest.mark.parametrize("seed", range(8))
    def test_static_explicit_order_identical(self, seed):
        problem = random_problem(seed)
        rng = np.random.default_rng(1000 + seed)
        order = rng.permutation(problem.n_items)
        vectorized = static_order_cover(problem, order=order)
        reference = reference_static_order_cover(problem, order=order)
        assert vectorized.order == reference.order

    @pytest.mark.parametrize("seed", range(6))
    def test_both_raise_on_infeasible(self, seed):
        rng = np.random.default_rng(seed)
        gains = rng.uniform(0, 0.5, (4, 3))
        demands = gains.sum(axis=0) + 1.0  # strictly uncoverable
        problem = CoverProblem(gains=gains, demands=demands)
        with pytest.raises(InfeasibleError):
            greedy_cover(problem)
        with pytest.raises(InfeasibleError):
            reference_greedy_cover(problem)
        with pytest.raises(InfeasibleError):
            static_order_cover(problem)
        with pytest.raises(InfeasibleError):
            reference_static_order_cover(problem)

    def test_zero_demand_both_empty(self):
        problem = CoverProblem(gains=np.ones((3, 2)), demands=np.zeros(2))
        assert greedy_cover(problem).size == 0
        assert reference_greedy_cover(problem).size == 0
        assert static_order_cover(problem).size == 0
        assert reference_static_order_cover(problem).size == 0

    def test_no_items_infeasible(self):
        problem = CoverProblem(
            gains=np.zeros((0, 2)), demands=np.array([1.0, 1.0])
        )
        with pytest.raises(InfeasibleError):
            greedy_cover(problem)
        with pytest.raises(InfeasibleError):
            reference_greedy_cover(problem)


class TestApproximationBound:
    """Greedy covers stay within Lemma 2's ``2βH_m`` factor of optimal."""

    #: Gain/demand measurement granularity of the random instances below;
    #: matches the two-decimal quality recording the paper assumes.
    UNIT = 0.01

    @pytest.mark.parametrize("seed", range(25))
    def test_greedy_within_lemma2_of_exact(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 12))
        k = int(rng.integers(1, 4))
        gains = np.round(rng.uniform(0, 1, (n, k)), 2)
        demands = np.round(gains.sum(axis=0) * float(rng.uniform(0.2, 0.7)), 2)
        problem = CoverProblem(gains=gains, demands=demands)
        if not problem.is_coverable():
            pytest.skip("rounding made the draw uncoverable")
        greedy = greedy_cover(problem)
        exact = solve_exact(problem)
        assert exact.certified
        factor = greedy_approximation_factor(problem, self.UNIT)
        assert greedy.size <= factor * max(exact.size, 1) + 1e-9
        assert greedy.size >= exact.size  # greedy can never beat optimal


class TestTieBreaking:
    """The documented rule: lowest index within ``_TOL`` of the max gain."""

    def test_exact_duplicate_rows_pick_lowest_index(self):
        row = np.array([0.4, 0.3, 0.2])
        gains = np.vstack([row, row, row, row])
        problem = CoverProblem(gains=gains, demands=np.array([0.5, 0.5, 0.3]))
        for solver in (greedy_cover, reference_greedy_cover):
            result = solver(problem)
            assert result.order[0] == 0
            assert list(result.order) == sorted(result.order)

    def test_adversarial_near_equal_gains_pick_lowest_index(self):
        # Item 2's gain exceeds item 0's by 1e-12 — far below _TOL, so the
        # two count as tied and the lower index must win in both kernels.
        base = np.array([0.25, 0.25, 0.25, 0.25])
        gains = np.vstack([base, base * 0.5, base + 2.5e-13])
        assert float((gains[2] - gains[0]).sum()) < _TOL
        problem = CoverProblem(gains=gains, demands=np.full(4, 0.3))
        for solver in (greedy_cover, reference_greedy_cover):
            assert solver(problem).order[0] == 0

    def test_gap_beyond_tolerance_is_not_a_tie(self):
        # Item 2 beats item 0 by 4e-9 total — outside the _TOL band — so
        # the genuinely larger gain must win despite the higher index.
        base = np.array([0.25, 0.25, 0.25, 0.25])
        gains = np.vstack([base, base * 0.5, base + 1e-9])
        assert float((gains[2] - gains[0]).sum()) > _TOL
        problem = CoverProblem(gains=gains, demands=np.full(4, 0.3))
        for solver in (greedy_cover, reference_greedy_cover):
            assert solver(problem).order[0] == 2

    def test_near_tie_stable_under_row_permutation_noise(self):
        # Perturbing tied rows by +-1e-13 (three orders of magnitude
        # below _TOL) must not change the selection order.
        rng = np.random.default_rng(5)
        row = rng.uniform(0.2, 0.6, 5)
        gains = np.vstack([row, row, row])
        problem = CoverProblem(gains=gains, demands=row * 2.5)
        baseline = greedy_cover(problem).order
        for trial in range(5):
            noise = np.random.default_rng(trial).uniform(-1e-13, 1e-13, gains.shape)
            noisy = CoverProblem(gains=np.clip(gains + noise, 0, None), demands=row * 2.5)
            assert greedy_cover(noisy).order == baseline
