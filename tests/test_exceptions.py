"""Tests for the exception hierarchy contract."""

import pickle

import numpy as np
import pytest

from repro.exceptions import (
    CheckpointError,
    ConvergenceError,
    EmptyPriceSetError,
    InfeasibleError,
    InstanceExecutionError,
    ReproError,
    SolverError,
    TransientError,
    ValidationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_cls",
        [ValidationError, InfeasibleError, EmptyPriceSetError, SolverError, ConvergenceError],
    )
    def test_all_errors_are_repro_errors(self, exc_cls):
        """One `except ReproError` catches every deliberate library failure."""
        with pytest.raises(ReproError):
            raise exc_cls("boom")

    def test_validation_error_is_value_error(self):
        """Idiomatic `except ValueError` call sites keep working."""
        with pytest.raises(ValueError):
            raise ValidationError("bad input")

    def test_empty_price_set_is_infeasible(self):
        """Callers treating both as 'no market' need only one handler."""
        with pytest.raises(InfeasibleError):
            raise EmptyPriceSetError("no feasible price")

    def test_library_raises_through_the_hierarchy(self):
        """End-to-end: a real library failure is catchable as ReproError."""
        from repro.coverage.greedy import greedy_cover
        from repro.coverage.problem import CoverProblem

        problem = CoverProblem(
            gains=np.full((1, 1), 0.1), demands=np.array([5.0])
        )
        with pytest.raises(ReproError):
            greedy_cover(problem)

    @pytest.mark.parametrize("exc_cls", [TransientError, CheckpointError, InstanceExecutionError])
    def test_resilience_errors_are_repro_errors(self, exc_cls):
        """The resilience additions stay inside the single hierarchy."""
        assert issubclass(exc_cls, ReproError)


class TestInstanceExecutionError:
    def _make(self) -> InstanceExecutionError:
        seed = np.random.SeedSequence(7).spawn(3)[2]
        return InstanceExecutionError(2, seed, RuntimeError("boom"), attempts=3)

    def test_carries_index_seed_cause_attempts(self):
        err = self._make()
        assert err.index == 2
        assert err.seed_key == (2,)
        assert isinstance(err.cause, RuntimeError)
        assert err.attempts == 3
        assert "instance 2" in str(err) and "3 attempt(s)" in str(err)

    def test_retryable_follows_the_cause(self):
        """Only TransientError causes mark the wrapper as retryable."""

        class Flaky(TransientError):
            pass

        seed = np.random.SeedSequence(0)
        assert InstanceExecutionError(0, seed, Flaky("x")).retryable
        assert not InstanceExecutionError(0, seed, RuntimeError("x")).retryable

    def test_pickle_round_trip(self):
        """Must survive the pool boundary with its payload intact."""
        err = self._make()
        clone = pickle.loads(pickle.dumps(err))
        assert clone.index == err.index
        assert clone.seed_key == err.seed_key
        assert clone.attempts == err.attempts
        assert type(clone.cause) is RuntimeError
        assert str(clone) == str(err)

    def test_unseeded_message(self):
        """A None seed renders without a spawn key instead of crashing."""
        err = InstanceExecutionError(0, None, RuntimeError("boom"))
        assert "unseeded" in str(err)
