"""Tests for the exception hierarchy contract."""

import pytest

from repro.exceptions import (
    ConvergenceError,
    EmptyPriceSetError,
    InfeasibleError,
    ReproError,
    SolverError,
    ValidationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_cls",
        [ValidationError, InfeasibleError, EmptyPriceSetError, SolverError, ConvergenceError],
    )
    def test_all_errors_are_repro_errors(self, exc_cls):
        """One `except ReproError` catches every deliberate library failure."""
        with pytest.raises(ReproError):
            raise exc_cls("boom")

    def test_validation_error_is_value_error(self):
        """Idiomatic `except ValueError` call sites keep working."""
        with pytest.raises(ValueError):
            raise ValidationError("bad input")

    def test_empty_price_set_is_infeasible(self):
        """Callers treating both as 'no market' need only one handler."""
        with pytest.raises(InfeasibleError):
            raise EmptyPriceSetError("no feasible price")

    def test_library_raises_through_the_hierarchy(self):
        """End-to-end: a real library failure is catchable as ReproError."""
        import numpy as np

        from repro.coverage.greedy import greedy_cover
        from repro.coverage.problem import CoverProblem

        problem = CoverProblem(
            gains=np.full((1, 1), 0.1), demands=np.array([5.0])
        )
        with pytest.raises(ReproError):
            greedy_cover(problem)
