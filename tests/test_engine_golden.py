"""Golden equivalence: engine-backed mechanisms == the pre-engine pipeline.

The SweepEngine refactor moved the shared ``feasible_price_set →
group_prices_by_candidates → per-group cover`` pipeline out of every
mechanism into :mod:`repro.engine`.  The contract is **bit-for-bit**
equality: a cached plan, a pass-through engine, and the retained
pre-refactor reference (:mod:`repro.engine.reference`) must all yield
identical PMFs, winner sets, and optima.  This is the suite CI's
``engine-smoke`` job runs.
"""

import numpy as np
import pytest

from repro.bench import seeded_auction_batch
from repro.engine import (
    SweepEngine,
    build_plan,
    reference_baseline_pmf,
    reference_dp_hsrc_pmf,
    reference_optimal_total_payment,
    reference_winner_schedule,
    use_engine,
)
from repro.coverage.dispatch import auto_cover_solver
from repro.coverage.greedy import greedy_cover
from repro.coverage.lazy import lazy_sparse_greedy_cover
from repro.mechanisms.baseline import BaselineAuction
from repro.mechanisms.dp_hsrc import DPHSRCAuction, reweight_pmf
from repro.mechanisms.dp_variants import PermuteFlipHSRCAuction
from repro.mechanisms.optimal import optimal_total_payment

EPSILONS = (0.1, 1.0)


@pytest.fixture(scope="module")
def instances():
    return seeded_auction_batch(4, n_workers=40, n_tasks=8, seed=2016)


def engines():
    """The three engine modes every mechanism must agree across."""
    return {
        "default": None,  # ambient pass-through, no use_engine at all
        "cached": SweepEngine(),
        "cache-off": SweepEngine(cache=False),
    }


def _run_under(engine, fn):
    if engine is None:
        return fn()
    with use_engine(engine):
        return fn()


def assert_pmf_equal(actual, expected):
    assert np.array_equal(actual.prices, expected.prices)
    assert np.array_equal(actual.probabilities, expected.probabilities)
    assert len(actual.winner_sets) == len(expected.winner_sets)
    for a, e in zip(actual.winner_sets, expected.winner_sets):
        assert np.array_equal(a, e)


class TestWinnerSchedule:
    def test_build_plan_matches_reference(self, instances):
        for instance in instances:
            prices, winner_sets = reference_winner_schedule(instance, greedy_cover)
            plan = build_plan(instance, greedy_cover)
            assert np.array_equal(plan.prices, prices)
            for a, e in zip(plan.winner_sets, winner_sets):
                assert np.array_equal(a, e)
            assert np.array_equal(
                plan.cover_sizes, np.array([w.size for w in winner_sets], dtype=float)
            )

    @pytest.mark.parametrize(
        "solver", [lazy_sparse_greedy_cover, auto_cover_solver], ids=["lazy", "auto"]
    )
    def test_sparse_kernels_build_the_same_plan(self, instances, solver):
        """The CELF/auto paths are bit-identical to the dense reference.

        ``build_plan`` warm-starts these solvers through a shared
        :class:`~repro.coverage.lazy.LazyGreedyState` (or the dense
        state, for auto on dense-leaning instances), so this also pins
        the warm-started sweep against the per-group reference solve.
        """
        for instance in instances:
            prices, winner_sets = reference_winner_schedule(instance, greedy_cover)
            plan = build_plan(instance, solver)
            assert np.array_equal(plan.prices, prices)
            for a, e in zip(plan.winner_sets, winner_sets):
                assert np.array_equal(a, e)
            assert np.array_equal(
                plan.cover_sizes, np.array([w.size for w in winner_sets], dtype=float)
            )


class TestDPHSRC:
    @pytest.mark.parametrize("mode", ["default", "cached", "cache-off"])
    @pytest.mark.parametrize("epsilon", EPSILONS)
    def test_pmf_matches_reference(self, instances, mode, epsilon):
        engine = engines()[mode]
        auction = DPHSRCAuction(epsilon=epsilon)
        for instance in instances:
            expected = reference_dp_hsrc_pmf(instance, epsilon)
            actual = _run_under(engine, lambda: auction.price_pmf(instance))
            assert_pmf_equal(actual, expected)

    @pytest.mark.parametrize("solver", ["lazy_sparse", "auto", "dense"])
    def test_named_cover_solvers_match_reference(self, instances, solver):
        auction = DPHSRCAuction(epsilon=0.5, cover_solver=solver)
        for instance in instances:
            expected = reference_dp_hsrc_pmf(instance, 0.5)
            assert_pmf_equal(auction.price_pmf(instance), expected)

    def test_cache_hit_is_bit_identical_to_miss(self, instances):
        instance = instances[0]
        auction = DPHSRCAuction(epsilon=0.1)
        with use_engine(SweepEngine()) as engine:
            first = auction.price_pmf(instance)
            second = auction.price_pmf(instance)  # served from cache
        assert engine.hits == 1 and engine.misses == 1
        assert_pmf_equal(second, first)

    def test_reweight_matches_direct_evaluation(self, instances):
        instance = instances[0]
        pmf = DPHSRCAuction(epsilon=0.1).price_pmf(instance)
        for epsilon in (0.5, 2.0):
            assert_pmf_equal(
                reweight_pmf(pmf, instance, epsilon),
                reference_dp_hsrc_pmf(instance, epsilon),
            )


class TestBaseline:
    @pytest.mark.parametrize("mode", ["default", "cached", "cache-off"])
    def test_pmf_matches_reference(self, instances, mode):
        engine = engines()[mode]
        auction = BaselineAuction(epsilon=0.1)
        for instance in instances:
            expected = reference_baseline_pmf(instance, 0.1)
            actual = _run_under(engine, lambda: auction.price_pmf(instance))
            assert_pmf_equal(actual, expected)


class TestPermuteFlip:
    def test_winner_schedule_shares_the_greedy_plan(self, instances):
        instance = instances[0]
        prices, winner_sets = reference_winner_schedule(instance, greedy_cover)
        with use_engine(SweepEngine()) as engine:
            pmf = PermuteFlipHSRCAuction(epsilon=1.0).price_pmf(instance)
            DPHSRCAuction(epsilon=0.1).price_pmf(instance)
        # The exponential original reused the permute-and-flip plan.
        assert engine.hits == 1 and engine.misses == 1
        assert np.array_equal(pmf.prices, prices)
        for a, e in zip(pmf.winner_sets, winner_sets):
            assert np.array_equal(a, e)


class TestOptimal:
    @pytest.mark.parametrize("mode", ["default", "cached", "cache-off"])
    def test_matches_reference_sweep(self, instances, mode):
        engine = engines()[mode]
        for instance in instances[:2]:
            price, winners, payment = reference_optimal_total_payment(
                instance, time_limit_per_solve=30.0
            )
            result = _run_under(
                engine,
                lambda: optimal_total_payment(instance, time_limit_per_solve=30.0),
            )
            assert result.certified
            assert result.price == price
            assert np.array_equal(result.winners, winners)
            assert result.total_payment == payment

    def test_optimal_reuses_the_dp_hsrc_plan(self, instances):
        instance = instances[0]
        with use_engine(SweepEngine()) as engine:
            DPHSRCAuction(epsilon=0.1).price_pmf(instance)
            result = optimal_total_payment(instance, time_limit_per_solve=30.0)
        # Same (instance, greedy_cover) key: the sweep was not recomputed.
        assert engine.hits == 1 and engine.misses == 1
        assert result.total_payment > 0
