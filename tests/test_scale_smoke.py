"""Scale smoke tier (``-m scale``) plus the bench dense-refusal guard.

The ``@pytest.mark.scale`` tests run the three scale kernels at
``N = 5·10^4`` — CELF lazy greedy on a CSR-native instance, the
shared-memory batch round trip, and the warm-started price sweep — each
bounded in wall-clock seconds so a quadratic regression fails loudly.
They are excluded from the default (tier-1) run by ``addopts`` in
``pyproject.toml``; CI's ``scale-smoke`` job selects them with
``pytest -m scale``.

The unmarked tests pin ``scripts/bench.py``'s refusal to attempt a
dense-kernel run beyond its cell budget: a clear ``SystemExit`` naming
the ``lazy_sparse`` alternative, never a raw ``MemoryError``.
"""

import importlib.util
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench import (
    BatchAuctionRunner,
    SharedInstanceBatch,
    seeded_auction_batch,
    seeded_sparse_cover_problem,
)
from repro.coverage.dispatch import use_lazy_kernel
from repro.coverage.lazy import LazyGreedyState, lazy_sparse_greedy_cover
from repro.coverage.problem import CoverProblem
from repro.engine import SweepEngine, use_engine
from repro.mechanisms.dp_hsrc import DPHSRCAuction
from repro.obs import MetricsRecorder, use_recorder

#: Generous per-operation wall-clock bound: each op measures well under
#: 10 s on a laptop-class core, so 60 s catches an asymptotic regression
#: without flaking on slow CI hardware.
SECONDS_BOUND = 60.0

SCALE_N = 50_000


def sparse_residual_unmet(problem, selection) -> int:
    """Unmet demands after ``selection``, computed without densifying."""
    covered = np.zeros(problem.n_constraints, dtype=np.float64)
    for i in selection:
        cols, gains = problem.row(int(i))
        np.add.at(covered, cols, gains)
    return int(np.count_nonzero(problem.demands - covered > 1e-9))


@pytest.mark.scale
class TestScaleSmoke:
    def test_lazy_greedy_covers_50k_items_in_seconds(self):
        problem = seeded_sparse_cover_problem(SCALE_N, 500, seed=2016)
        start = time.perf_counter()
        state = LazyGreedyState(problem)
        result = state.solve()
        elapsed = time.perf_counter() - start
        assert elapsed < SECONDS_BOUND
        assert 0 < result.size < SCALE_N
        assert sparse_residual_unmet(problem, result.selection) == 0
        # Warm-started re-solve under a budget mask reuses the state's
        # initial scoring, so it must not cost another full pass.
        mask = np.ones(SCALE_N, dtype=bool)
        mask[: SCALE_N // 2] = False
        start = time.perf_counter()
        masked = state.solve(mask)
        assert time.perf_counter() - start < SECONDS_BOUND
        assert all(i >= SCALE_N // 2 for i in masked.order)

    def test_shm_batch_round_trip_at_50k_workers(self):
        [instance] = seeded_auction_batch(1, n_workers=SCALE_N, n_tasks=8, seed=2016)
        start = time.perf_counter()
        shared = SharedInstanceBatch.create([instance])
        rebuilt = None
        try:
            rebuilt = shared.batch.unpack(0)
            assert np.array_equal(rebuilt.quality, instance.quality)
            assert np.array_equal(rebuilt.prices, instance.prices)
            assert np.shares_memory(rebuilt.quality, shared.batch.floats)
            assert rebuilt.bids == instance.bids
        finally:
            del rebuilt
            shared.dispose()
        assert time.perf_counter() - start < SECONDS_BOUND

    def test_batch_runner_shared_memory_at_scale(self):
        batch = seeded_auction_batch(2, n_workers=SCALE_N // 2, n_tasks=8, seed=2016)
        mechanism = DPHSRCAuction(epsilon=0.5)
        start = time.perf_counter()
        serial = BatchAuctionRunner(mechanism, backend="serial").run(batch, seed=7)
        shm = BatchAuctionRunner(
            mechanism, backend="process", max_workers=2, transport="shared_memory"
        ).run(batch, seed=7)
        assert time.perf_counter() - start < 2 * SECONDS_BOUND
        for a, b in zip(serial.outcomes, shm.outcomes):
            assert a.price == b.price
            assert np.array_equal(a.winners, b.winners)

    def test_warm_started_sweep_at_scale(self):
        # 100 tasks at bundle size 3-5 gives density ~0.04, so the
        # dispatcher picks the lazy kernel for the whole sweep.
        [instance] = seeded_auction_batch(1, n_workers=SCALE_N, n_tasks=100, seed=2016)
        problem = CoverProblem(
            gains=instance.effective_quality, demands=instance.demands
        )
        assert use_lazy_kernel(problem)
        mechanism = DPHSRCAuction(epsilon=0.5)
        recorder = MetricsRecorder()
        start = time.perf_counter()
        with use_engine(SweepEngine()), use_recorder(recorder):
            first = mechanism.price_pmf(instance)
            second = mechanism.price_pmf(instance)
        assert time.perf_counter() - start < 2 * SECONDS_BOUND
        assert np.array_equal(first.probabilities, second.probabilities)
        # One shared plan: the second sweep is a pure cache hit, and the
        # lazy kernel's initial scoring ran once per plan build, not once
        # per price group.
        assert recorder.counters.get("engine.plan.hits") == 1.0
        assert recorder.counters.get("engine.plan.misses") == 1.0
        assert recorder.counters.get("lazy_greedy.calls", 0.0) > 0.0


def load_bench_module():
    path = Path(__file__).resolve().parents[1] / "scripts" / "bench.py"
    spec = importlib.util.spec_from_file_location("bench_script", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDenseScaleRefusal:
    def test_oversized_dense_request_exits_with_actionable_message(self):
        bench = load_bench_module()
        with pytest.raises(SystemExit) as caught:
            bench.check_dense_scale(100_000, 1_000)
        message = str(caught.value)
        assert "MemoryError" not in message
        assert "refused" in message
        assert "--scale-solver lazy_sparse" in message
        assert "100,000,000" in message  # names the offending cell count

    def test_shapes_within_budget_pass(self):
        bench = load_bench_module()
        assert bench.check_dense_scale(20_000, 500) is None

    def test_cli_dense_request_fails_fast(self):
        """`--scale-solver dense` exits before any benchmark runs."""
        bench = load_bench_module()
        with pytest.raises(SystemExit, match="lazy_sparse"):
            bench.main(["--scale-solver", "dense"])
