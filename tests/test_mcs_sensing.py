"""Unit tests for repro.mcs.sensing."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mcs.sensing import assignment_mask, collect_labels


class TestAssignmentMask:
    def test_winners_get_their_bundles(self):
        bundle_mask = np.array([[True, False], [True, True], [False, True]])
        mask = assignment_mask(bundle_mask, winners=np.array([1]))
        assert mask.tolist() == [[False, False], [True, True], [False, False]]

    def test_empty_winners(self):
        bundle_mask = np.ones((2, 2), dtype=bool)
        assert not assignment_mask(bundle_mask, np.array([], dtype=int)).any()

    def test_out_of_range_winner(self):
        with pytest.raises(ValidationError, match="out of range"):
            assignment_mask(np.ones((2, 2), dtype=bool), np.array([5]))


class TestCollectLabels:
    def test_only_assigned_pairs_labeled(self):
        skills = np.full((2, 3), 0.8)
        truth = np.array([1, -1, 1])
        assignments = np.array([[True, False, False], [False, True, True]])
        labels = collect_labels(skills, truth, assignments, seed=0)
        assert (labels != 0).tolist() == assignments.tolist()

    def test_labels_are_pm_one_where_assigned(self):
        skills = np.full((3, 4), 0.5)
        truth = np.array([1, 1, -1, -1])
        assignments = np.ones((3, 4), dtype=bool)
        labels = collect_labels(skills, truth, assignments, seed=1)
        assert np.all(np.isin(labels, (-1, 1)))

    def test_perfect_worker_always_correct(self):
        skills = np.ones((1, 5))
        truth = np.array([1, -1, 1, -1, 1])
        labels = collect_labels(skills, truth, np.ones((1, 5), bool), seed=2)
        assert np.array_equal(labels[0], truth)

    def test_antiperfect_worker_always_wrong(self):
        skills = np.zeros((1, 5))
        truth = np.array([1, -1, 1, -1, 1])
        labels = collect_labels(skills, truth, np.ones((1, 5), bool), seed=3)
        assert np.array_equal(labels[0], -truth)

    def test_empirical_accuracy_matches_skill(self):
        theta = 0.73
        skills = np.full((1, 40_000), theta)
        truth = np.random.default_rng(4).choice((-1, 1), size=40_000)
        labels = collect_labels(skills, truth, np.ones_like(skills, bool), seed=5)
        accuracy = np.mean(labels[0] == truth)
        assert accuracy == pytest.approx(theta, abs=0.01)

    def test_reproducible_with_seed(self):
        skills = np.full((2, 4), 0.6)
        truth = np.array([1, 1, -1, -1])
        a = collect_labels(skills, truth, np.ones((2, 4), bool), seed=6)
        b = collect_labels(skills, truth, np.ones((2, 4), bool), seed=6)
        assert np.array_equal(a, b)

    def test_shape_validations(self):
        with pytest.raises(ValidationError):
            collect_labels(
                np.full((1, 2), 0.5), np.array([1]), np.ones((1, 2), bool)
            )
        with pytest.raises(ValidationError):
            collect_labels(
                np.full((1, 2), 0.5), np.array([1, -1]), np.ones((2, 2), bool)
            )

    def test_truth_must_be_pm_one(self):
        with pytest.raises(ValidationError):
            collect_labels(
                np.full((1, 1), 0.5), np.array([0]), np.ones((1, 1), bool)
            )
