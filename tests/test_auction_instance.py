"""Unit tests for repro.auction.instance."""

import numpy as np
import pytest

from repro.auction.bids import Bid, BidProfile
from repro.auction.instance import AuctionInstance
from repro.exceptions import ValidationError


def make_instance(**overrides):
    kwargs = dict(
        bids=BidProfile([Bid([0], 1.0), Bid([1], 2.0)]),
        quality=np.array([[0.5, 0.3], [0.2, 0.8]]),
        demands=np.array([0.4, 0.4]),
        price_grid=np.array([1.0, 2.0, 3.0]),
        c_min=1.0,
        c_max=3.0,
    )
    kwargs.update(overrides)
    return AuctionInstance(**kwargs)


class TestConstruction:
    def test_basic_shapes(self):
        inst = make_instance()
        assert inst.n_workers == 2
        assert inst.n_tasks == 2

    def test_bid_count_mismatch(self):
        with pytest.raises(ValidationError, match="rows"):
            make_instance(bids=BidProfile([Bid([0], 1.0)]))

    def test_demand_length_mismatch(self):
        with pytest.raises(ValidationError, match="columns"):
            make_instance(demands=np.array([0.4]))

    def test_quality_out_of_unit_interval(self):
        with pytest.raises(ValidationError, match="\\[0, 1\\]"):
            make_instance(quality=np.array([[1.5, 0.3], [0.2, 0.8]]))

    def test_negative_demand(self):
        with pytest.raises(ValidationError, match="non-negative"):
            make_instance(demands=np.array([-0.1, 0.4]))

    def test_empty_price_grid(self):
        with pytest.raises(ValidationError, match="price_grid"):
            make_instance(price_grid=np.array([]))

    def test_cmin_above_cmax(self):
        with pytest.raises(ValidationError, match="c_min"):
            make_instance(c_min=5.0)

    def test_bundle_task_out_of_range(self):
        with pytest.raises(ValidationError, match="only 2 tasks"):
            make_instance(bids=BidProfile([Bid([0], 1.0), Bid([5], 2.0)]))

    def test_price_grid_sorted_and_deduped(self):
        inst = make_instance(price_grid=np.array([3.0, 1.0, 3.0, 2.0]))
        assert inst.price_grid.tolist() == [1.0, 2.0, 3.0]

    def test_arrays_readonly(self):
        inst = make_instance()
        with pytest.raises(ValueError):
            inst.quality[0, 0] = 9.0


class TestDerivedViews:
    def test_prices(self):
        assert make_instance().prices.tolist() == [1.0, 2.0]

    def test_bundle_mask(self):
        mask = make_instance().bundle_mask
        assert mask.tolist() == [[True, False], [False, True]]

    def test_effective_quality_masks_outside_bundle(self):
        eff = make_instance().effective_quality
        assert eff.tolist() == [[0.5, 0.0], [0.0, 0.8]]

    def test_affordable_mask(self):
        inst = make_instance()
        assert inst.affordable_mask(1.0).tolist() == [True, False]
        assert inst.affordable_mask(2.0).tolist() == [True, True]
        assert inst.affordable_mask(0.5).tolist() == [False, False]

    def test_total_demand(self):
        assert make_instance().total_demand() == pytest.approx(0.8)


class TestReplaceBid:
    def test_neighbor_shares_task_data(self):
        inst = make_instance()
        neighbor = inst.replace_bid(0, Bid([1], 2.5))
        assert neighbor.bids[0].price == 2.5
        assert neighbor.bids[1] == inst.bids[1]
        assert np.array_equal(neighbor.quality, inst.quality)
        # Original is untouched.
        assert inst.bids[0].price == 1.0

    def test_neighbor_recomputes_effective_quality(self):
        inst = make_instance()
        neighbor = inst.replace_bid(0, Bid([1], 1.0))
        assert neighbor.effective_quality.tolist() == [[0.0, 0.3], [0.0, 0.8]]


class TestFromSkills:
    def test_lemma1_transformations(self):
        bids = BidProfile([Bid([0], 1.0)])
        inst = AuctionInstance.from_skills(
            bids=bids,
            skills=np.array([[0.9]]),
            error_thresholds=[0.1],
            price_grid=[1.0, 2.0],
            c_min=1.0,
            c_max=2.0,
        )
        assert inst.quality[0, 0] == pytest.approx((2 * 0.9 - 1) ** 2)
        assert inst.demands[0] == pytest.approx(2 * np.log(10))

    def test_rejects_bad_skills(self):
        with pytest.raises(ValidationError):
            AuctionInstance.from_skills(
                bids=BidProfile([Bid([0], 1.0)]),
                skills=np.array([[1.2]]),
                error_thresholds=[0.1],
                price_grid=[1.0],
                c_min=1.0,
                c_max=2.0,
            )
