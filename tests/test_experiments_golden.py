"""Golden pins for every registry experiment (fast mode, seed 0).

Each experiment's ``run(fast=True, seed=0)`` output is pinned bit-exact
against ``tests/golden/experiments/<name>.json`` — the contract that let
the campaign refactor collapse the figure/extension driver loops without
moving a single published number.

Two classes of cells are exempt from bit-exactness, because they were
never bit-stable to begin with:

* **measured wall-clock** (table2's time columns, ablation_solver's
  per-backend seconds) — skipped entirely;
* **time-capped exact solves** (the optimal benchmark under
  ``time_limit_per_solve``: figure1/figure2's optimal columns, all of
  approximation's R_OPT-derived columns, table2's ``n_solves``) — which
  solves finish inside the cap depends on machine load, so these compare
  under a relative tolerance instead.

Everything else — every RNG-driven value in all 17 experiments — must
match the golden byte-for-byte.  Regenerate a golden (after an
*intentional* change) with::

    PYTHONPATH=src python scripts/regen_golden.py <name>
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.experiments import EXPERIMENTS

GOLDEN_DIR = Path(__file__).parent / "golden" / "experiments"

#: Per-experiment column policy: headers whose cells are skipped outright
#: (wall-clock measurements) or compared with relative tolerance
#: (time-capped solver outputs).
SKIP_COLUMNS = {
    "table2": {"dp_hsrc time (s)", "optimal time (s)"},
    "ablation_solver": {"milp (s)", "bnb (s)"},
}
FUZZY_COLUMNS = {
    "figure1": {"optimal mean", "optimal std"},
    "figure2": {"optimal mean", "optimal std"},
    "table2": {"n_solves"},
    "approximation": {
        "R_OPT",
        "dp_hsrc ratio",
        "baseline ratio",
        "theorem6 / R_OPT",
    },
}
#: Experiments whose notes mention time-limit hits (load-dependent);
#: only the first (descriptive) note is pinned for these.
LOOSE_NOTES = {"table2", "approximation"}
FUZZY_RTOL = 0.25


def _cells_match(a, b, *, fuzzy: bool) -> bool:
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        fa, fb = float(a), float(b)
        if math.isnan(fa) or math.isnan(fb):
            return math.isnan(fa) and math.isnan(fb)
        if fuzzy:
            return math.isclose(fa, fb, rel_tol=FUZZY_RTOL, abs_tol=1.0)
    return a == b


@pytest.mark.parametrize("name", EXPERIMENTS)
def test_matches_golden(name, experiment_cache):
    golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text(encoding="utf-8"))[
        "json"
    ]
    result = experiment_cache(name)

    assert result.name == golden["name"]
    assert result.title == golden["title"]
    assert list(result.headers) == golden["headers"]

    skip = SKIP_COLUMNS.get(name, set())
    fuzzy = FUZZY_COLUMNS.get(name, set())
    assert len(result.rows) == len(golden["rows"]), "row count changed"
    for i, (row, gold_row) in enumerate(zip(result.rows, golden["rows"])):
        assert len(row) == len(gold_row)
        for header, cell, gold_cell in zip(result.headers, row, gold_row):
            if header in skip:
                continue
            # to_json stringifies non-finite floats ("inf"/"-inf"/"nan");
            # decode those golden cells back for the comparison.
            if isinstance(cell, float) and gold_cell in ("inf", "-inf", "nan"):
                gold_cell = float(gold_cell)
            assert _cells_match(cell, gold_cell, fuzzy=header in fuzzy), (
                f"{name} row {i} column {header!r}: {cell!r} != {gold_cell!r}"
            )

    if name in LOOSE_NOTES:
        assert result.notes[0] == golden["notes"][0]
    else:
        assert list(result.notes) == golden["notes"]


def test_every_golden_has_an_experiment():
    """No orphaned golden files (renames must update both sides)."""
    on_disk = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    assert on_disk == set(EXPERIMENTS)
