"""Unit tests for repro.mcs.workers."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mcs.workers import WorkerPool


def make_pool():
    return WorkerPool(
        skills=np.array([[0.9, 0.8], [0.6, 0.7]]),
        bundles=(frozenset({0}), frozenset({0, 1})),
        costs=np.array([3.0, 5.0]),
    )


class TestConstruction:
    def test_basic(self):
        pool = make_pool()
        assert pool.n_workers == 2
        assert pool.n_tasks == 2

    def test_bundle_count_mismatch(self):
        with pytest.raises(ValidationError, match="bundles"):
            WorkerPool(
                skills=np.ones((2, 2)) * 0.5,
                bundles=(frozenset({0}),),
                costs=np.array([1.0, 2.0]),
            )

    def test_cost_count_mismatch(self):
        with pytest.raises(ValidationError, match="costs"):
            WorkerPool(
                skills=np.ones((2, 2)) * 0.5,
                bundles=(frozenset({0}), frozenset({1})),
                costs=np.array([1.0]),
            )

    def test_empty_bundle_rejected(self):
        with pytest.raises(ValidationError, match="empty bundle"):
            WorkerPool(
                skills=np.ones((1, 2)) * 0.5,
                bundles=(frozenset(),),
                costs=np.array([1.0]),
            )

    def test_unknown_task_rejected(self):
        with pytest.raises(ValidationError, match="unknown task"):
            WorkerPool(
                skills=np.ones((1, 2)) * 0.5,
                bundles=(frozenset({7}),),
                costs=np.array([1.0]),
            )

    def test_negative_cost_rejected(self):
        with pytest.raises(ValidationError, match="non-negative"):
            WorkerPool(
                skills=np.ones((1, 1)) * 0.5,
                bundles=(frozenset({0}),),
                costs=np.array([-1.0]),
            )

    def test_skill_range_checked(self):
        with pytest.raises(ValidationError):
            WorkerPool(
                skills=np.array([[1.2]]),
                bundles=(frozenset({0}),),
                costs=np.array([1.0]),
            )


class TestTruthfulBids:
    def test_matches_private_truth(self):
        pool = make_pool()
        bids = pool.truthful_bids()
        assert bids[0].bundle == frozenset({0})
        assert bids[0].price == 3.0
        assert bids[1].bundle == frozenset({0, 1})
        assert bids[1].price == 5.0


class TestBundleMask:
    def test_mask(self):
        assert make_pool().bundle_mask().tolist() == [
            [True, False],
            [True, True],
        ]


class TestToInstance:
    def test_builds_lemma1_quantities(self):
        pool = make_pool()
        inst = pool.to_instance(
            error_thresholds=np.array([0.1, 0.2]),
            price_grid=np.array([3.0, 4.0, 5.0]),
            c_min=1.0,
            c_max=6.0,
        )
        assert inst.n_workers == 2
        assert inst.quality[0, 0] == pytest.approx((2 * 0.9 - 1) ** 2)
        assert inst.demands[0] == pytest.approx(2 * np.log(10))

    def test_skills_estimate_override(self):
        pool = make_pool()
        estimate = np.full((2, 2), 0.75)
        inst = pool.to_instance(
            error_thresholds=np.array([0.1, 0.2]),
            price_grid=np.array([5.0]),
            c_min=1.0,
            c_max=6.0,
            skills_estimate=estimate,
        )
        assert inst.quality[0, 0] == pytest.approx(0.25)

    def test_custom_bids_override(self):
        from repro.auction.bids import Bid, BidProfile

        pool = make_pool()
        lying = BidProfile([Bid([1], 9.0), Bid([0], 1.0)])
        inst = pool.to_instance(
            error_thresholds=np.array([0.3, 0.3]),
            price_grid=np.array([5.0, 9.0]),
            c_min=1.0,
            c_max=9.0,
            bids=lying,
        )
        assert inst.bids[0].price == 9.0


class TestUtility:
    def test_winner_and_loser(self):
        pool = make_pool()
        assert pool.utility_of(0, payment=5.0, won=True) == 2.0
        assert pool.utility_of(0, payment=5.0, won=False) == 0.0
