"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out
        assert "table2" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_fast_flag_and_seed(self, capsys):
        assert main(["ablation_grid", "--fast", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Ablation" in out

    def test_fast_runs_are_seed_deterministic(self, capsys):
        main(["figure5", "--fast", "--seed", "9"])
        first = capsys.readouterr().out
        main(["figure5", "--fast", "--seed", "9"])
        second = capsys.readouterr().out
        assert first == second


class TestObservabilityFlags:
    def test_trace_flag_writes_a_valid_trace(self, capsys, tmp_path):
        from repro.obs import read_trace, validate_trace_file

        trace = tmp_path / "trace.jsonl"
        assert main(["figure5", "--fast", "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert f"wrote {trace}" in out
        summary = validate_trace_file(trace)
        assert len(summary["span_kinds"]) >= 4
        assert "experiment" in summary["span_kinds"]
        assert summary["ledger_entries"] > 0
        assert summary["total_epsilon"] > 0
        header = read_trace(trace)[0]
        assert header["generator"] == "repro-cli"
        assert header["experiments"] == ["figure5"]

    def test_tracing_does_not_change_the_printed_series(self, capsys, tmp_path):
        main(["figure5", "--fast", "--seed", "4"])
        bare = capsys.readouterr().out
        trace = tmp_path / "trace.jsonl"
        main(["figure5", "--fast", "--seed", "4", "--trace", str(trace)])
        traced = capsys.readouterr().out
        # Identical output modulo the trailing "wrote <path>" line.
        assert traced.startswith(bare)
        assert traced[len(bare):].strip() == f"wrote {trace}"

    def test_metrics_flag_prints_the_summary_report(self, capsys):
        assert main(["figure5", "--fast", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "Span time by kind" in out
        assert "Privacy ledger" in out

    def test_resilience_flags_install_the_ambient_config(self, capsys, tmp_path):
        """--max-retries/--resume/--fault-plan reach the experiment scope.

        A plan targeting index 99 injects nothing into table1, so this
        verifies the plumbing end-to-end without a chaos run (the chaos
        round trip is CI's chaos-smoke job and the resilience suites).
        """
        assert (
            main(
                [
                    "table1",
                    "--fault-plan",
                    "transient@99:1",
                    "--max-retries",
                    "2",
                    "--resume",
                    str(tmp_path),
                ]
            )
            == 0
        )
        assert "Table I" in capsys.readouterr().out

    def test_malformed_fault_plan_exits_2(self, capsys):
        assert main(["table1", "--fault-plan", "explode@oops"]) == 2
        assert "fault" in capsys.readouterr().err

    def test_negative_max_retries_exits_2(self, capsys):
        assert main(["table1", "--max-retries", "-3"]) == 2
        assert "max_retries" in capsys.readouterr().err

    def test_verbose_flag_configures_repro_logging(self):
        import logging

        from repro.cli import configure_logging

        logger = logging.getLogger("repro")
        before_level = logger.level
        before_handlers = list(logger.handlers)
        try:
            configure_logging(2)
            assert logger.level == logging.DEBUG
            n_handlers = len(logger.handlers)
            # Idempotent: a second call must not stack handlers.
            configure_logging(1)
            assert len(logger.handlers) == n_handlers
            assert logger.level == logging.INFO
        finally:
            logger.setLevel(before_level)
            logger.handlers[:] = before_handlers


class TestMetricsFormats:
    def test_openmetrics_format_passes_the_strict_parser(self, capsys):
        from repro.obs import parse_openmetrics

        assert main(["figure5", "--fast", "--metrics-format", "openmetrics"]) == 0
        out = capsys.readouterr().out
        # The exposition document starts after the experiment table.
        start = out.index("# TYPE")
        families = parse_openmetrics(out[start:])
        assert "repro_privacy_epsilon" in families
        assert any(info["type"] == "histogram" for info in families.values())
        assert out.endswith("# EOF\n")

    def test_openmetrics_includes_budget_account_gauges(self, capsys):
        from repro.obs import parse_openmetrics

        assert (
            main(
                [
                    "figure5",
                    "--fast",
                    "--metrics-format",
                    "openmetrics",
                    "--budget",
                    "50000",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        families = parse_openmetrics(out[out.index("# TYPE"):])
        samples = families["repro_budget_epsilon_remaining"]["samples"]
        assert samples[0][1]["tenant"] == "default"

    def test_json_format_is_machine_readable(self, capsys):
        import json

        assert main(["figure5", "--fast", "--metrics-format", "json"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out[out.index('{"'):] if '{"' in out else out[out.index("{"):])
        assert doc["schema"] == "repro-metrics-export/1"
        assert doc["ledger"]["total_epsilon"] > 0

    def test_non_ascii_format_implies_metrics(self, capsys):
        # Without --metrics, a non-ascii format still records and prints.
        assert main(["table1", "--metrics-format", "openmetrics"]) == 0
        assert "# EOF" in capsys.readouterr().out

    def test_ascii_format_without_metrics_prints_no_report(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Span time by kind" not in out
        assert "# EOF" not in out


class TestTraceSubcommand:
    def _write_trace(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main(["figure5", "--fast", "--trace", str(trace)]) == 0
        return trace

    def test_validate_accepts_a_good_trace(self, capsys, tmp_path):
        trace = self._write_trace(tmp_path)
        capsys.readouterr()
        assert main(["trace", "validate", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "valid repro-trace/1" in out
        assert str(trace) in out

    def test_validate_rejects_a_tampered_trace(self, capsys, tmp_path):
        trace = self._write_trace(tmp_path)
        lines = trace.read_text().splitlines()
        trace.write_text("\n".join(lines[:-1]) + "\n")  # drop the trailer
        capsys.readouterr()
        assert main(["trace", "validate", str(trace)]) == 1
        assert "ledger_total" in capsys.readouterr().err

    def test_validate_missing_file_exits_one(self, capsys):
        assert main(["trace", "validate", "/nonexistent/trace.jsonl"]) == 1
        assert "error" in capsys.readouterr().err

    def test_report_renders_the_offline_summary(self, capsys, tmp_path):
        trace = self._write_trace(tmp_path)
        capsys.readouterr()
        assert main(["trace", "report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Span time by kind" in out
        assert "Privacy ledger" in out

    def test_report_validates_first(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["trace", "report", str(bad)]) == 1
        assert "not valid JSON" in capsys.readouterr().err
