"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out
        assert "table2" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_fast_flag_and_seed(self, capsys):
        assert main(["ablation_grid", "--fast", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Ablation" in out

    def test_fast_runs_are_seed_deterministic(self, capsys):
        main(["figure5", "--fast", "--seed", "9"])
        first = capsys.readouterr().out
        main(["figure5", "--fast", "--seed", "9"])
        second = capsys.readouterr().out
        assert first == second
