"""Unit tests for repro.utils.ascii_plot and the CLI --plot path."""

import pytest

from repro.exceptions import ValidationError
from repro.experiments.export import plot
from repro.experiments.runner import ExperimentResult
from repro.utils.ascii_plot import ascii_chart


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_chart([1, 2, 3], {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]})
        assert "*" in chart and "o" in chart
        assert "* a" in chart and "o b" in chart

    def test_axis_labels(self):
        chart = ascii_chart([10, 20], {"s": [5.0, 50.0]})
        assert "50" in chart and "5" in chart  # y extremes
        assert "10" in chart and "20" in chart  # x extremes

    def test_rising_series_rises(self):
        chart = ascii_chart([1, 2, 3], {"up": [0.0, 5.0, 10.0]}, width=30, height=5)
        rows = [line for line in chart.splitlines() if "|" in line]
        first_marker_row = next(i for i, r in enumerate(rows) if "*" in r)
        last_marker_row = max(i for i, r in enumerate(rows) if "*" in r)
        # Higher y values render on earlier (upper) rows.
        assert first_marker_row < last_marker_row

    def test_title_prepended(self):
        chart = ascii_chart([1, 2], {"s": [1.0, 2.0]}, title="My Chart")
        assert chart.splitlines()[0] == "My Chart"

    def test_constant_series_renders(self):
        chart = ascii_chart([1, 2, 3], {"flat": [4.0, 4.0, 4.0]})
        assert "*" in chart

    def test_validation(self):
        with pytest.raises(ValidationError):
            ascii_chart([], {"s": []})
        with pytest.raises(ValidationError):
            ascii_chart([1, 2], {})
        with pytest.raises(ValidationError, match="ascending"):
            ascii_chart([2, 1], {"s": [1.0, 2.0]})
        with pytest.raises(ValidationError, match="points"):
            ascii_chart([1, 2], {"s": [1.0]})
        with pytest.raises(ValidationError, match="8x3"):
            ascii_chart([1, 2], {"s": [1.0, 2.0]}, width=2)


class TestResultPlot:
    def test_prefers_mean_columns(self):
        result = ExperimentResult(
            name="x", title="T",
            headers=["n", "dp mean", "dp std"],
            rows=[(1, 10.0, 1.0), (2, 20.0, 2.0)],
        )
        chart = plot(result)
        assert chart is not None
        assert "dp mean" in chart
        assert "dp std" not in chart

    def test_non_numeric_axis_returns_none(self):
        result = ExperimentResult(
            name="x", title="T", headers=["who", "v"], rows=[("a", 1.0)]
        )
        assert plot(result) is None

    def test_descending_axis_returns_none(self):
        result = ExperimentResult(
            name="x", title="T", headers=["n", "v"], rows=[(3, 1.0), (1, 2.0)]
        )
        assert plot(result) is None

    def test_nonfinite_series_skipped(self):
        result = ExperimentResult(
            name="x", title="T",
            headers=["n", "good", "bad"],
            rows=[(1, 1.0, float("inf")), (2, 2.0, 3.0)],
        )
        chart = plot(result)
        assert chart is not None
        assert "bad" not in chart

    def test_cli_plot_flag(self, capsys):
        from repro.cli import main

        assert main(["table1", "--plot"]) == 0  # not chartable: no crash
        out = capsys.readouterr().out
        assert "Table I" in out
