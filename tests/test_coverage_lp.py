"""Unit tests for repro.coverage.lp."""

import numpy as np
import pytest

from repro.coverage.lp import lp_lower_bound
from repro.coverage.problem import CoverProblem
from repro.exceptions import InfeasibleError


class TestLPLowerBound:
    def test_exact_on_integral_instance(self):
        # Disjoint unit covers: LP optimum is integral (= 2).
        p = CoverProblem(gains=np.eye(2), demands=np.array([1.0, 1.0]))
        result = lp_lower_bound(p)
        assert result.objective == pytest.approx(2.0)
        assert result.integral_bound == 2

    def test_fractional_relaxation_below_integer(self):
        # One constraint of demand 1, items of gain 0.6: LP = 1/0.6 < 2 = OPT.
        p = CoverProblem(gains=np.full((3, 1), 0.6), demands=np.array([1.0]))
        result = lp_lower_bound(p)
        assert result.objective == pytest.approx(1.0 / 0.6)
        assert result.integral_bound == 2

    def test_integral_bound_guards_solver_noise(self):
        p = CoverProblem(gains=np.eye(3), demands=np.ones(3))
        assert lp_lower_bound(p).integral_bound == 3

    def test_zero_demand_gives_zero(self):
        p = CoverProblem(gains=np.ones((2, 1)), demands=np.array([0.0]))
        result = lp_lower_bound(p)
        assert result.objective == 0.0

    def test_forced_in_raises_objective(self):
        p = CoverProblem(gains=np.eye(2), demands=np.array([1.0, 0.0]))
        base = lp_lower_bound(p).objective
        forced = lp_lower_bound(p, forced_in=np.array([1])).objective
        assert forced == pytest.approx(base + 1.0)

    def test_forced_out_can_make_infeasible(self):
        p = CoverProblem(gains=np.eye(2), demands=np.array([1.0, 1.0]))
        with pytest.raises(InfeasibleError):
            lp_lower_bound(p, forced_out=np.array([0]))

    def test_conflicting_restrictions_rejected(self):
        p = CoverProblem(gains=np.eye(2), demands=np.ones(2))
        with pytest.raises(InfeasibleError, match="forced both"):
            lp_lower_bound(p, forced_in=np.array([0]), forced_out=np.array([0]))

    def test_infeasible_problem_detected(self):
        p = CoverProblem(gains=np.full((2, 1), 0.1), demands=np.array([1.0]))
        with pytest.raises(InfeasibleError):
            lp_lower_bound(p)

    def test_fractional_items_detection(self):
        p = CoverProblem(gains=np.full((3, 1), 0.6), demands=np.array([1.0]))
        result = lp_lower_bound(p)
        assert result.fractional_items().size > 0

    def test_solution_within_bounds(self):
        rng = np.random.default_rng(3)
        p = CoverProblem(gains=rng.uniform(0, 1, (10, 4)), demands=np.full(4, 1.5))
        result = lp_lower_bound(p)
        assert np.all(result.solution >= -1e-9)
        assert np.all(result.solution <= 1 + 1e-9)


class TestSimplexBackend:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_highs_backend(self, seed):
        rng = np.random.default_rng(seed)
        gains = rng.uniform(0, 1, (10, 3))
        gains[rng.random(gains.shape) < 0.3] = 0.0
        p = CoverProblem(gains=gains, demands=gains.sum(axis=0) * 0.4)
        a = lp_lower_bound(p, backend="highs")
        b = lp_lower_bound(p, backend="simplex")
        assert a.objective == pytest.approx(b.objective, abs=1e-6)

    def test_restrictions_match_highs(self):
        rng = np.random.default_rng(42)
        gains = rng.uniform(0, 1, (8, 3))
        p = CoverProblem(gains=gains, demands=gains.sum(axis=0) * 0.5)
        forced_in = np.array([0, 3])
        forced_out = np.array([1])
        a = lp_lower_bound(p, forced_in=forced_in, forced_out=forced_out, backend="highs")
        b = lp_lower_bound(p, forced_in=forced_in, forced_out=forced_out, backend="simplex")
        assert a.objective == pytest.approx(b.objective, abs=1e-6)

    def test_infeasible_restriction_detected(self):
        p = CoverProblem(gains=np.eye(2), demands=np.ones(2))
        with pytest.raises(InfeasibleError):
            lp_lower_bound(p, forced_out=np.array([0]), backend="simplex")

    def test_unknown_backend_rejected(self):
        p = CoverProblem(gains=np.eye(2), demands=np.ones(2))
        with pytest.raises(ValueError, match="LP backend"):
            lp_lower_bound(p, backend="cplex")
