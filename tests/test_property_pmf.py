"""Property-based tests of PricePMF identities (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auction.mechanism import PricePMF


@st.composite
def pmfs(draw):
    m = draw(st.integers(1, 8))
    n_workers = draw(st.integers(1, 6))
    prices = np.cumsum(
        np.array(draw(st.lists(st.floats(0.1, 5.0), min_size=m, max_size=m)))
    )
    weights = np.array(draw(st.lists(st.floats(0.01, 1.0), min_size=m, max_size=m)))
    probs = weights / weights.sum()
    sets = []
    for _ in range(m):
        size = draw(st.integers(0, n_workers))
        sets.append(
            np.array(
                draw(
                    st.lists(
                        st.integers(0, n_workers - 1),
                        unique=True,
                        min_size=size,
                        max_size=size,
                    )
                ),
                dtype=int,
            )
        )
    return PricePMF(
        prices=np.round(prices, 8),
        probabilities=probs,
        winner_sets=tuple(sets),
        n_workers=n_workers,
    )


class TestPMFIdentities:
    @given(pmf=pmfs())
    @settings(max_examples=60, deadline=None)
    def test_expected_payment_is_prob_weighted_sum(self, pmf):
        manual = sum(
            float(pmf.probabilities[k]) * float(pmf.prices[k]) * pmf.winner_sets[k].size
            for k in range(pmf.support_size)
        )
        assert pmf.expected_total_payment() == pytest.approx(manual)

    @given(pmf=pmfs())
    @settings(max_examples=60, deadline=None)
    def test_variance_nonnegative(self, pmf):
        assert pmf.std_total_payment() >= 0.0

    @given(pmf=pmfs())
    @settings(max_examples=60, deadline=None)
    def test_win_probabilities_in_unit_interval(self, pmf):
        for worker in range(pmf.n_workers):
            p = pmf.win_probability(worker)
            assert -1e-12 <= p <= 1 + 1e-12

    @given(pmf=pmfs())
    @settings(max_examples=60, deadline=None)
    def test_expected_utility_linear_in_cost(self, pmf):
        """E[u](cost) = E[u](0) − cost · Pr[win] — linearity identity."""
        for worker in (0, pmf.n_workers - 1):
            at_zero = pmf.expected_utility(worker, 0.0)
            cost = 2.5
            expected = at_zero - cost * pmf.win_probability(worker)
            assert pmf.expected_utility(worker, cost) == pytest.approx(expected)

    @given(pmf=pmfs())
    @settings(max_examples=40, deadline=None)
    def test_sampled_outcomes_always_from_support(self, pmf):
        outcome = pmf.sample_outcome(seed=0)
        idx = int(np.searchsorted(pmf.prices, outcome.price))
        assert np.isclose(pmf.prices[idx], outcome.price)
        assert outcome.winners.tolist() == sorted(pmf.winner_sets[idx].tolist())

    @given(pmf=pmfs())
    @settings(max_examples=40, deadline=None)
    def test_outcome_at_total_payment_identity(self, pmf):
        for k in range(pmf.support_size):
            outcome = pmf.outcome_at(k)
            assert outcome.total_payment == pytest.approx(
                float(pmf.total_payments[k])
            )
