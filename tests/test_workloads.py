"""Unit tests for repro.workloads.settings and repro.workloads.generator."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mechanisms.price_set import feasible_price_set
from repro.workloads.generator import (
    generate_instance,
    generate_worker_population,
    matched_neighbor,
    random_bid_perturbation,
)
from repro.workloads.settings import (
    SETTING_I,
    SETTING_II,
    SETTING_III,
    SETTING_IV,
    SETTINGS,
    SimulationSetting,
)


class TestTableISettings:
    def test_all_four_registered(self):
        assert set(SETTINGS) == {"I", "II", "III", "IV"}

    def test_paper_parameters(self):
        for s in SETTINGS.values():
            assert s.epsilon == 0.1
            assert s.c_min == 10.0
            assert s.c_max == 60.0
            assert s.skill_range == (0.1, 0.9)
            assert s.error_threshold_range == (0.1, 0.2)
            assert s.price_range == (35.0, 60.0)

    def test_sweep_axes(self):
        assert SETTING_I.worker_sweep[0] == 80 and SETTING_I.worker_sweep[-1] == 140
        assert SETTING_II.task_sweep[0] == 20 and SETTING_II.task_sweep[-1] == 50
        assert SETTING_III.worker_sweep[0] == 800 and SETTING_III.worker_sweep[-1] == 1400
        assert SETTING_IV.task_sweep[0] == 200 and SETTING_IV.task_sweep[-1] == 500

    def test_bundle_sizes(self):
        assert SETTING_I.bundle_size == (10, 20)
        assert SETTING_III.bundle_size == (50, 150)

    def test_price_grid_structure(self):
        grid = SETTING_I.price_grid()
        assert grid[0] == 35.0
        assert grid[-1] == 60.0
        assert np.allclose(np.diff(grid), 0.1)
        assert grid.size == 251

    def test_cost_lattice_structure(self):
        lattice = SETTING_I.cost_lattice()
        assert lattice[0] == 10.0
        assert lattice[-1] == 60.0
        assert np.allclose(np.diff(lattice), 0.1)

    def test_with_population(self):
        s = SETTING_I.with_population(n_workers=99)
        assert s.n_workers == 99
        assert s.n_tasks == SETTING_I.n_tasks

    def test_validation_rejects_bad_configs(self):
        with pytest.raises(ValidationError):
            SimulationSetting(
                name="bad", epsilon=0.0, c_min=1, c_max=2, bundle_size=(1, 2),
                skill_range=(0, 1), error_threshold_range=(0.1, 0.2),
                n_workers=5, n_tasks=5, price_range=(1, 2),
            )
        with pytest.raises(ValidationError):
            SimulationSetting(
                name="bad", epsilon=0.1, c_min=5, c_max=2, bundle_size=(1, 2),
                skill_range=(0, 1), error_threshold_range=(0.1, 0.2),
                n_workers=5, n_tasks=5, price_range=(1, 2),
            )
        with pytest.raises(ValidationError):
            SimulationSetting(
                name="bad", epsilon=0.1, c_min=1, c_max=10, bundle_size=(1, 2),
                skill_range=(0, 1), error_threshold_range=(0.1, 0.2),
                n_workers=5, n_tasks=5, price_range=(0.5, 2),  # below c_min
            )


class TestGenerateWorkerPopulation:
    def test_shapes_and_ranges(self, tiny_setting):
        pool = generate_worker_population(tiny_setting, seed=0)
        assert pool.n_workers == tiny_setting.n_workers
        assert pool.n_tasks == tiny_setting.n_tasks
        lo, hi = tiny_setting.skill_range
        assert np.all((lo <= pool.skills) & (pool.skills <= hi))
        assert np.all((tiny_setting.c_min <= pool.costs) & (pool.costs <= tiny_setting.c_max))

    def test_bundle_sizes_in_range(self, tiny_setting):
        pool = generate_worker_population(tiny_setting, seed=1)
        blo, bhi = tiny_setting.bundle_size
        for bundle in pool.bundles:
            assert blo <= len(bundle) <= bhi

    def test_costs_on_lattice(self, tiny_setting):
        pool = generate_worker_population(tiny_setting, seed=2)
        lattice = tiny_setting.cost_lattice()
        for cost in pool.costs:
            assert np.any(np.isclose(lattice, cost))

    def test_population_overrides(self, tiny_setting):
        pool = generate_worker_population(tiny_setting, seed=3, n_workers=7, n_tasks=4)
        assert pool.n_workers == 7
        assert pool.n_tasks == 4

    def test_bundle_size_clamped_to_task_count(self, tiny_setting):
        pool = generate_worker_population(tiny_setting, seed=4, n_tasks=2)
        assert all(len(b) <= 2 for b in pool.bundles)

    def test_reproducible(self, tiny_setting):
        a = generate_worker_population(tiny_setting, seed=5)
        b = generate_worker_population(tiny_setting, seed=5)
        assert np.array_equal(a.skills, b.skills)
        assert a.bundles == b.bundles


class TestGenerateInstance:
    def test_instance_is_globally_feasible(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=0)
        coverage = instance.effective_quality.sum(axis=0)
        assert np.all(coverage >= instance.demands - 1e-9)

    def test_bids_are_truthful(self, tiny_setting):
        instance, pool = generate_instance(tiny_setting, seed=1)
        for bid, bundle, cost in zip(instance.bids, pool.bundles, pool.costs):
            assert bid.bundle == bundle
            assert bid.price == cost

    def test_reproducible(self, tiny_setting):
        a, _ = generate_instance(tiny_setting, seed=2)
        b, _ = generate_instance(tiny_setting, seed=2)
        assert np.array_equal(a.quality, b.quality)
        assert a.bids == b.bids

    def test_infeasible_configuration_raises(self):
        from repro.exceptions import InfeasibleError

        impossible = SimulationSetting(
            name="impossible", epsilon=0.1, c_min=1.0, c_max=10.0,
            bundle_size=(1, 1), skill_range=(0.45, 0.55),
            error_threshold_range=(0.01, 0.02), n_workers=3, n_tasks=20,
            price_range=(5.0, 10.0), grid_step=1.0,
        )
        with pytest.raises(InfeasibleError, match="feasible instance"):
            generate_instance(impossible, seed=0, max_retries=3)


class TestNeighbors:
    def test_perturbation_changes_exactly_one_bid(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=3)
        neighbor = random_bid_perturbation(instance, tiny_setting, worker=2, seed=0)
        diffs = [
            i for i in range(instance.n_workers)
            if instance.bids[i] != neighbor.bids[i]
        ]
        assert diffs == [2] or diffs == []  # redraw may coincide

    def test_perturbation_preserves_bundle_size(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=4)
        neighbor = random_bid_perturbation(instance, tiny_setting, worker=0, seed=1)
        assert len(neighbor.bids[0].bundle) == len(instance.bids[0].bundle)

    def test_matched_neighbor_same_support(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=5)
        neighbor = matched_neighbor(instance, tiny_setting, worker=1, seed=2)
        assert np.allclose(
            feasible_price_set(instance), feasible_price_set(neighbor)
        )
