"""The centralized tolerance regime (repro.tolerances) and its edge cases.

Pins the constants' values, the single-source-of-truth aliasing across
the kernels that historically carried their own literals, the
grid-price-equals-asking-price inclusion rule the ``PRICE_DUST_REL``
guard exists for, and the degenerate all-workers-affordable short
circuit in ``group_prices_by_candidates``.
"""

import numpy as np

from repro.auction.bids import Bid, BidProfile
from repro.auction.instance import AuctionInstance
from repro.engine.price_set import feasible_price_set, group_prices_by_candidates
from repro.tolerances import DEMAND_TOL, PRICE_DUST_REL, inflate_prices


def make_instance(asking_prices, price_grid, n_tasks=3, demand=0.5):
    """Full-bundle unit-quality workers at the given asking prices."""
    n = len(asking_prices)
    bids = BidProfile([Bid(tuple(range(n_tasks)), p) for p in asking_prices])
    return AuctionInstance(
        bids=bids,
        quality=np.ones((n, n_tasks)),
        demands=np.full(n_tasks, float(demand)),
        price_grid=np.asarray(price_grid, dtype=float),
        c_min=0.1,
        c_max=float(max(price_grid)),
    )


class TestConstants:
    def test_pinned_values(self):
        assert DEMAND_TOL == 1e-9
        assert PRICE_DUST_REL == 1e-12

    def test_single_source_of_truth_aliases(self):
        from repro.coverage import greedy
        from repro.engine import price_set
        from repro.mechanisms import threshold_auction

        assert greedy._TOL is DEMAND_TOL
        assert threshold_auction._TOL is DEMAND_TOL
        assert price_set.DEMAND_TOL is DEMAND_TOL

    def test_inflate_prices_is_a_tiny_relative_bump(self):
        prices = np.array([1.0, 10.0, 100.0])
        inflated = inflate_prices(prices)
        assert np.all(inflated > prices)
        assert np.allclose(inflated, prices, rtol=1e-11)


class TestGridPriceEqualsAskingPrice:
    """A grid price bitwise-equal to an asking price includes that worker."""

    def test_worker_joins_at_exactly_its_asking_price(self):
        instance = make_instance([1.5, 2.0], price_grid=[1.0, 1.5, 2.0, 3.0])
        prices = feasible_price_set(instance)
        # 1.0 affords nobody; 1.5 affords worker 0 exactly at its bid.
        assert np.array_equal(prices, [1.5, 2.0, 3.0])
        groups = group_prices_by_candidates(instance, prices)
        assert np.array_equal(groups[0].candidates, [0])
        assert np.array_equal(prices[groups[0].price_indices], [1.5])
        # Worker 1 joins at exactly 2.0, not one grid step later.
        assert np.array_equal(groups[1].candidates, [0, 1])
        assert np.array_equal(prices[groups[1].price_indices], [2.0, 3.0])

    def test_representation_dust_does_not_exclude_a_worker(self):
        # 0.1 + 0.2 > 0.3 by ~5.6e-17: without the relative inflation a
        # worker asking "0.3" would be priced out of the 0.3 grid point.
        # (Feasibility itself uses the exact mask — strictly conservative,
        # since the inflated grouping only ever *adds* workers — so the
        # guard is exercised at the grouping layer.)
        asking = 0.1 + 0.2
        assert asking > 0.3
        instance = make_instance([asking], price_grid=[0.3, 0.4])
        groups = group_prices_by_candidates(instance, np.array([0.3, 0.4]))
        assert len(groups) == 1
        assert np.array_equal(groups[0].candidates, [0])

    def test_guard_never_pulls_in_a_more_expensive_worker(self):
        instance = make_instance([1.5, 1.5 + 1e-6], price_grid=[1.5, 2.0])
        groups = group_prices_by_candidates(
            instance, feasible_price_set(instance)
        )
        assert np.array_equal(groups[0].candidates, [0])


class TestDegenerateSingleGroup:
    def test_all_workers_affordable_short_circuits_to_one_group(self):
        instance = make_instance([1.0, 1.0, 1.0], price_grid=[1.0, 2.0, 3.0, 4.0])
        prices = feasible_price_set(instance)
        groups = group_prices_by_candidates(instance, prices)
        assert len(groups) == 1
        assert np.array_equal(groups[0].candidates, [0, 1, 2])
        assert np.array_equal(groups[0].price_indices, np.arange(prices.size))

    def test_short_circuit_matches_the_brute_force_grouping(self):
        rng = np.random.default_rng(5)
        # Every asking price below the whole grid: degenerate by construction.
        instance = make_instance(
            rng.uniform(0.2, 0.9, size=8).tolist(), price_grid=[1.0, 1.5, 2.0]
        )
        prices = feasible_price_set(instance)
        groups = group_prices_by_candidates(instance, prices)
        assert len(groups) == 1
        for k, price in enumerate(prices):
            expected = np.flatnonzero(instance.prices <= price * (1 + PRICE_DUST_REL))
            assert np.array_equal(groups[0].candidates, expected)
            assert k in groups[0].price_indices

    def test_general_path_partition_covers_every_price_once(self):
        instance = make_instance([1.5, 2.0, 2.5], price_grid=[1.0, 1.5, 2.0, 2.5, 3.0])
        prices = feasible_price_set(instance)
        groups = group_prices_by_candidates(instance, prices)
        assert len(groups) > 1
        covered = np.concatenate([g.price_indices for g in groups])
        assert np.array_equal(np.sort(covered), np.arange(prices.size))
