"""Unit tests for repro.privacy.exponential."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.privacy.exponential import ExponentialMechanism


class TestDistribution:
    def test_probabilities_normalize(self):
        mech = ExponentialMechanism(
            scores=np.array([-1.0, -2.0, -3.0]), epsilon=1.0, sensitivity=1.0
        )
        assert mech.probabilities.sum() == pytest.approx(1.0)

    def test_higher_score_more_likely(self):
        mech = ExponentialMechanism(
            scores=np.array([0.0, 1.0]), epsilon=1.0, sensitivity=1.0
        )
        assert mech.probabilities[1] > mech.probabilities[0]

    def test_exact_two_point_ratio(self):
        # P(1)/P(0) = exp(eps * (s1 - s0) / (2 * sens))
        mech = ExponentialMechanism(
            scores=np.array([0.0, 2.0]), epsilon=1.0, sensitivity=1.0
        )
        ratio = mech.probabilities[1] / mech.probabilities[0]
        assert ratio == pytest.approx(np.exp(1.0))

    def test_uniform_when_scores_equal(self):
        mech = ExponentialMechanism(
            scores=np.zeros(4), epsilon=5.0, sensitivity=1.0
        )
        assert np.allclose(mech.probabilities, 0.25)

    def test_tiny_epsilon_is_nearly_uniform(self):
        mech = ExponentialMechanism(
            scores=np.array([0.0, 100.0]), epsilon=1e-9, sensitivity=1.0
        )
        assert np.allclose(mech.probabilities, 0.5, atol=1e-6)

    def test_huge_epsilon_concentrates(self):
        mech = ExponentialMechanism(
            scores=np.array([0.0, 1.0]), epsilon=1e4, sensitivity=1.0
        )
        assert mech.probabilities[1] == pytest.approx(1.0)

    def test_extreme_scores_do_not_overflow(self):
        # Equivalent to Figure 5's eps=1000 on large payments.
        mech = ExponentialMechanism(
            scores=np.array([-1e6, -2e6, -3e6]), epsilon=1000.0, sensitivity=6e4
        )
        probs = mech.probabilities
        assert np.all(np.isfinite(probs))
        assert probs.sum() == pytest.approx(1.0)

    def test_translation_invariance(self):
        a = ExponentialMechanism(np.array([0.0, 1.0, 3.0]), 1.0, 1.0)
        b = ExponentialMechanism(np.array([10.0, 11.0, 13.0]), 1.0, 1.0)
        assert np.allclose(a.probabilities, b.probabilities)


class TestDPGuarantee:
    def test_log_ratio_bounded_by_epsilon_on_neighbors(self, rng):
        """Shifting every score by ≤ sensitivity changes log-probs ≤ ε."""
        epsilon, sensitivity = 0.7, 2.0
        scores = rng.uniform(-10, 0, size=20)
        shift = rng.uniform(-sensitivity, sensitivity, size=20)
        a = ExponentialMechanism(scores, epsilon, sensitivity)
        b = ExponentialMechanism(scores + shift, epsilon, sensitivity)
        diff = np.abs(a.log_probabilities - b.log_probabilities)
        assert np.max(diff) <= epsilon + 1e-9

    def test_privacy_bound_reported(self):
        mech = ExponentialMechanism(np.zeros(2), epsilon=0.3, sensitivity=1.0)
        assert mech.privacy_bound_log_ratio() == 0.3


class TestSampling:
    def test_sample_in_range(self):
        mech = ExponentialMechanism(np.array([0.0, 1.0]), 1.0, 1.0)
        assert mech.sample(seed=0) in (0, 1)

    def test_sample_many_matches_distribution(self):
        mech = ExponentialMechanism(np.array([0.0, 2.0]), 1.0, 1.0)
        draws = mech.sample_many(50_000, seed=1)
        expected = mech.probabilities[1]
        assert np.mean(draws == 1) == pytest.approx(expected, abs=0.01)


class TestValidation:
    def test_empty_candidates_rejected(self):
        with pytest.raises(ValidationError, match="at least one"):
            ExponentialMechanism(np.array([]), 1.0, 1.0)

    @pytest.mark.parametrize("eps", [0.0, -1.0])
    def test_bad_epsilon_rejected(self, eps):
        with pytest.raises(ValidationError, match="epsilon"):
            ExponentialMechanism(np.zeros(2), eps, 1.0)

    @pytest.mark.parametrize("sens", [0.0, -1.0])
    def test_bad_sensitivity_rejected(self, sens):
        with pytest.raises(ValidationError, match="sensitivity"):
            ExponentialMechanism(np.zeros(2), 1.0, sens)
