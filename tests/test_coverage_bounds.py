"""Unit tests for repro.coverage.bounds (Lemma 2 arithmetic)."""

import numpy as np
import pytest

from repro.coverage.bounds import (
    greedy_approximation_factor,
    harmonic_number,
    max_row_gain,
    multiplicity,
)
from repro.coverage.problem import CoverProblem


class TestHarmonicNumber:
    def test_small_values(self):
        assert harmonic_number(1) == 1.0
        assert harmonic_number(2) == pytest.approx(1.5)
        assert harmonic_number(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)

    def test_zero_and_negative(self):
        assert harmonic_number(0) == 0.0
        assert harmonic_number(-3) == 0.0

    def test_float_input_floored(self):
        assert harmonic_number(2.9) == pytest.approx(1.5)

    def test_asymptotic_matches_exact_at_crossover(self):
        # Compare the asymptotic branch against direct summation.
        m = 150_000
        exact = float(np.sum(1.0 / np.arange(1, m + 1)))
        assert harmonic_number(m) == pytest.approx(exact, rel=1e-10)

    def test_monotone(self):
        values = [harmonic_number(m) for m in (1, 10, 100, 1000)]
        assert values == sorted(values)


class TestProblemQuantities:
    def problem(self):
        return CoverProblem(
            gains=np.array([[0.5, 0.3], [0.1, 0.1]]),
            demands=np.array([1.0, 0.5]),
        )

    def test_max_row_gain(self):
        assert max_row_gain(self.problem()) == pytest.approx(0.8)

    def test_max_row_gain_empty(self):
        p = CoverProblem(gains=np.zeros((0, 2)), demands=np.zeros(2))
        assert max_row_gain(p) == 0.0

    def test_multiplicity(self):
        # total demand 1.5 at unit 0.1 → 15
        assert multiplicity(self.problem(), unit=0.1) == 15

    def test_multiplicity_rounds_up(self):
        p = CoverProblem(gains=np.ones((1, 1)), demands=np.array([0.25]))
        assert multiplicity(p, unit=0.1) == 3

    def test_multiplicity_rejects_bad_unit(self):
        with pytest.raises(Exception):
            multiplicity(self.problem(), unit=0.0)

    def test_greedy_factor_formula(self):
        p = self.problem()
        # beta is counted in units of 0.1: ceil(0.8 / 0.1) = 8.
        expected = 2.0 * 8 * harmonic_number(15)
        assert greedy_approximation_factor(p, unit=0.1) == pytest.approx(expected)

    def test_factor_never_below_one_on_degenerate_instances(self):
        # The hypothesis-found counterexample: tiny raw beta.
        p = CoverProblem(gains=np.array([[0.1]]), demands=np.array([0.05]))
        assert greedy_approximation_factor(p, unit=0.05) >= 1.0


class TestLemma2Holds:
    """The 2βH_m guarantee must hold empirically for the greedy solver."""

    @pytest.mark.parametrize("seed", range(5))
    def test_greedy_within_factor(self, seed):
        from repro.coverage.exact import solve_exact
        from repro.coverage.greedy import greedy_cover

        rng = np.random.default_rng(seed)
        gains = np.round(rng.uniform(0, 1, (15, 4)), 2)
        demands = np.round(rng.uniform(0.5, 2.0, 4), 2)
        p = CoverProblem(gains=gains, demands=demands)
        if not p.is_coverable():
            pytest.skip("instance not coverable")
        greedy_size = greedy_cover(p).size
        opt_size = solve_exact(p, backend="milp").size
        factor = greedy_approximation_factor(p, unit=0.01)
        assert greedy_size <= factor * opt_size + 1e-9
