"""Tier-1 tests for the online threshold mechanisms and arrival streams."""

import math

import numpy as np
import pytest

from repro.analysis.online import (
    OfflineBenchmark,
    analytic_competitive_bound,
    competitive_audit,
    offline_optimum,
)
from repro.auction.bids import Bid
from repro.exceptions import BudgetExceededError, ValidationError
from repro.mechanisms.online import (
    DPOnlineThresholdMechanism,
    OnlineOutcome,
    OnlineState,
    OnlineThresholdMechanism,
)
from repro.obs import MetricsRecorder, use_recorder
from repro.privacy.budget import InMemoryBudgetStore, use_budget_store
from repro.workloads import OnlineArrivalStream, generate_instance, static_gains
from repro.workloads.streams import ARRIVAL_ORDERS


@pytest.fixture(scope="module")
def market(tiny_setting_module):
    instance, _pool = generate_instance(tiny_setting_module, seed=5)
    return instance


@pytest.fixture(scope="module")
def tiny_setting_module():
    from repro.workloads.settings import SimulationSetting

    return SimulationSetting(
        name="tiny",
        epsilon=0.5,
        c_min=1.0,
        c_max=10.0,
        bundle_size=(3, 5),
        skill_range=(0.3, 0.95),
        error_threshold_range=(0.3, 0.5),
        n_workers=40,
        n_tasks=6,
        price_range=(4.0, 10.0),
        grid_step=0.5,
    )


class TestArrivalStream:
    def test_every_order_is_a_permutation_of_survivors(self, market):
        for order in ARRIVAL_ORDERS:
            stream = OnlineArrivalStream(market, order=order, seed=3)
            arrivals = stream.arrivals
            assert sorted(arrivals.tolist()) == list(range(market.n_workers))

    def test_same_parameters_same_sequence(self, market):
        a = OnlineArrivalStream(market, order="uniform", seed=9, churn=0.2)
        b = OnlineArrivalStream(market, order="uniform", seed=9, churn=0.2)
        assert np.array_equal(a.arrivals, b.arrivals)
        assert a.fingerprint() == b.fingerprint()

    def test_different_seed_changes_sequence_and_fingerprint(self, market):
        a = OnlineArrivalStream(market, order="uniform", seed=1)
        b = OnlineArrivalStream(market, order="uniform", seed=2)
        assert not np.array_equal(a.arrivals, b.arrivals)
        assert a.fingerprint() != b.fingerprint()

    def test_churn_drops_workers_deterministically(self, market):
        full = OnlineArrivalStream(market, order="uniform", seed=4)
        churned = OnlineArrivalStream(market, order="uniform", seed=4, churn=0.4)
        assert churned.n_arrivals < full.n_arrivals
        assert churned.n_arrivals >= 1
        # The surviving set is shared with every order at the same seed.
        churned_given = OnlineArrivalStream(market, order="as_given", seed=4, churn=0.4)
        assert set(churned.arrivals.tolist()) == set(churned_given.arrivals.tolist())

    def test_adversarial_order_leads_with_highest_density(self, market):
        stream = OnlineArrivalStream(market, order="adversarial", seed=0)
        density = static_gains(market) / market.prices
        ordered = density[stream.arrivals]
        assert np.all(np.diff(ordered) <= 1e-12)

    def test_bursty_order_sorts_each_burst_by_price(self, market):
        stream = OnlineArrivalStream(market, order="bursty", seed=6, n_bursts=3)
        chunks = np.array_split(np.arange(stream.n_arrivals), 3)
        for chunk in chunks:
            prices = market.prices[stream.arrivals[chunk]]
            assert np.all(np.diff(prices) >= 0)

    def test_prefix_and_with_instance(self, market, tiny_setting_module):
        stream = OnlineArrivalStream(market, order="uniform", seed=7)
        assert np.array_equal(stream.prefix(5), stream.arrivals[:5])
        neighbor = market.replace_bid(0, Bid(sorted(market.bids[0].bundle), 9.0))
        moved = stream.with_instance(neighbor)
        assert np.array_equal(stream.arrivals, moved.arrivals)
        assert moved.instance is neighbor

    def test_invalid_parameters_raise(self, market):
        with pytest.raises(ValidationError):
            OnlineArrivalStream(market, order="nope")
        with pytest.raises(ValidationError):
            OnlineArrivalStream(market, churn=1.0)
        with pytest.raises(ValidationError):
            OnlineArrivalStream(market, n_bursts=0)


class TestOnlineThresholdMechanism:
    def test_outcome_respects_hard_budget_and_pays_winners(self, market):
        mechanism = OnlineThresholdMechanism(budget=120.0, n_stages=3)
        stream = OnlineArrivalStream(market, order="uniform", seed=11)
        outcome = mechanism.run(stream)
        assert outcome.n_winners > 0
        assert outcome.spent <= mechanism.budget
        assert outcome.spent == pytest.approx(sum(outcome.payments))
        for worker, payment in zip(outcome.winners, outcome.payments):
            assert payment >= market.prices[worker]
        losers = set(range(market.n_workers)) - set(outcome.winners)
        vector = outcome.payment_vector()
        assert all(vector[w] == 0.0 for w in losers)

    def test_thresholds_are_monotone_non_increasing(self, market):
        mechanism = OnlineThresholdMechanism(budget=80.0, n_stages=4)
        stream = OnlineArrivalStream(market, order="uniform", seed=2)
        outcome = mechanism.run(stream)
        assert len(outcome.thresholds) == 4
        for earlier, later in zip(outcome.thresholds, outcome.thresholds[1:]):
            assert later <= earlier

    def test_replay_is_bit_identical(self, market):
        mechanism = OnlineThresholdMechanism(budget=100.0, n_stages=3)
        first = mechanism.run(OnlineArrivalStream(market, order="uniform", seed=8))
        second = mechanism.run(OnlineArrivalStream(market, order="uniform", seed=8))
        assert first == second

    def test_fast_screen_matches_reference_path(self, market):
        stream = OnlineArrivalStream(market, order="uniform", seed=13)
        screened = OnlineThresholdMechanism(budget=90.0, n_stages=3).run(stream)
        reference = OnlineThresholdMechanism(
            budget=90.0, n_stages=3, fast_screen=False
        ).run(stream)
        assert screened == reference

    def test_partial_run_is_a_prefix_of_the_full_run(self, market):
        mechanism = OnlineThresholdMechanism(budget=100.0, n_stages=4)
        stream = OnlineArrivalStream(market, order="uniform", seed=21)
        full = mechanism.run(stream)
        for upto in range(1, 5):
            partial = mechanism.run_stages(stream, upto=upto)
            n = partial.next_arrival
            assert tuple(partial.decisions) == full.decisions[:n]

    def test_finalize_refuses_partial_state(self, market):
        mechanism = OnlineThresholdMechanism(budget=100.0, n_stages=3)
        stream = OnlineArrivalStream(market, order="uniform", seed=21)
        partial = mechanism.run_stages(stream, upto=1)
        with pytest.raises(ValidationError):
            mechanism.finalize(stream, partial)

    def test_advance_past_last_stage_raises(self, market):
        mechanism = OnlineThresholdMechanism(budget=100.0, n_stages=2)
        stream = OnlineArrivalStream(market, order="uniform", seed=21)
        state = mechanism.run_stages(stream)
        with pytest.raises(ValidationError):
            mechanism.advance_stage(stream, state)

    def test_state_mismatch_is_rejected(self, market):
        mechanism = OnlineThresholdMechanism(budget=100.0, n_stages=2)
        stream = OnlineArrivalStream(market, order="uniform", seed=21)
        state = mechanism.initial_state(stream)
        state.next_arrival = 7  # not a stage boundary
        state.decisions = [False] * 7
        state.stage = 1
        with pytest.raises(ValidationError):
            mechanism.advance_stage(stream, state)

    def test_outcome_payload_round_trip(self, market):
        mechanism = OnlineThresholdMechanism(budget=70.0, n_stages=3)
        outcome = mechanism.run(OnlineArrivalStream(market, order="uniform", seed=5))
        assert OnlineOutcome.from_payload(outcome.to_payload()) == outcome

    def test_state_payload_round_trip_including_inf_threshold(self, market):
        mechanism = OnlineThresholdMechanism(budget=70.0, n_stages=3)
        stream = OnlineArrivalStream(market, order="uniform", seed=5)
        state = mechanism.run_stages(stream, upto=2)
        state.thresholds[0] = math.inf
        restored = OnlineState.from_payload(state.to_payload())
        assert restored.thresholds == state.thresholds
        assert restored.decisions == state.decisions
        assert np.array_equal(restored.covered, state.covered)

    def test_stage_spans_and_counters_are_recorded(self, market):
        recorder = MetricsRecorder()
        mechanism = OnlineThresholdMechanism(budget=90.0, n_stages=3)
        with use_recorder(recorder):
            mechanism.run(OnlineArrivalStream(market, order="uniform", seed=11))
        assert recorder.span_counts_by_kind().get("online_stage") == 3
        names = [s.name for s in recorder.spans if s.kind == "online_stage"]
        assert names == ["online.stage.0", "online.stage.1", "online.stage.2"]
        counters = recorder.counters
        assert counters["online.stage.calibrations"] == 3
        assert counters["online.arrivals"] + counters["online.observed"] == 40
        assert counters["online.accepts"] + counters["online.rejects"] == (
            counters["online.arrivals"]
        )

    def test_invalid_construction_raises(self):
        with pytest.raises(Exception):
            OnlineThresholdMechanism(budget=0.0)
        with pytest.raises(ValidationError):
            OnlineThresholdMechanism(budget=1.0, n_stages=0)


class TestDPOnlineMechanism:
    def test_seeded_runs_are_bit_identical(self, market):
        mechanism = DPOnlineThresholdMechanism(
            budget=110.0, epsilon=1.0, n_stages=3, record_ledger=False
        )
        stream = OnlineArrivalStream(market, order="uniform", seed=11)
        assert mechanism.run(stream, seed=7) == mechanism.run(stream, seed=7)

    def test_charged_epsilon_matches_ledger(self, market):
        recorder = MetricsRecorder()
        mechanism = DPOnlineThresholdMechanism(budget=110.0, epsilon=0.9, n_stages=3)
        with use_recorder(recorder):
            outcome = mechanism.run(
                OnlineArrivalStream(market, order="uniform", seed=11), seed=7
            )
        assert outcome.charged_epsilon == pytest.approx(0.9)
        assert recorder.ledger.total_epsilon == pytest.approx(0.9)
        assert len(recorder.ledger.entries) == 3
        assert all(e.mechanism == "online-dp" for e in recorder.ledger.entries)

    def test_refuse_policy_raises_before_any_spend(self, market):
        mechanism = DPOnlineThresholdMechanism(budget=110.0, epsilon=0.9, n_stages=3)
        stream = OnlineArrivalStream(market, order="uniform", seed=11)
        store = InMemoryBudgetStore(limit=0.1)
        with use_budget_store(store, tenant="poor"):
            with pytest.raises(BudgetExceededError):
                mechanism.run(stream, seed=7)
        assert store.remaining("poor") == pytest.approx(0.1)

    def test_degrade_policy_falls_back_and_tags(self, market):
        recorder = MetricsRecorder()
        mechanism = DPOnlineThresholdMechanism(budget=110.0, epsilon=0.9, n_stages=3)
        stream = OnlineArrivalStream(market, order="uniform", seed=11)
        with use_recorder(recorder), use_budget_store(
            InMemoryBudgetStore(limit=0.35), tenant="poor", on_exhausted="degrade"
        ):
            outcome = mechanism.run(stream, seed=7)
        assert outcome.degraded
        # Only the first stage's eps was charged before degrading.
        assert outcome.charged_epsilon == pytest.approx(0.3)
        assert recorder.counters["budget.degraded"] == 1

    def test_calibration_pmf_is_a_distribution(self, market):
        mechanism = DPOnlineThresholdMechanism(
            budget=110.0, epsilon=1.0, n_stages=2, record_ledger=False
        )
        stream = OnlineArrivalStream(market, order="uniform", seed=11)
        candidates, probabilities = mechanism.calibration_pmf(stream, stage=1)
        assert candidates.size == probabilities.size == mechanism.n_candidates
        assert probabilities.sum() == pytest.approx(1.0)
        assert np.all(np.diff(candidates) > 0)

    def test_dp_outcome_respects_budget_and_rationality(self, market):
        mechanism = DPOnlineThresholdMechanism(
            budget=110.0, epsilon=1.0, n_stages=3, record_ledger=False
        )
        outcome = mechanism.run(
            OnlineArrivalStream(market, order="uniform", seed=11), seed=3
        )
        assert outcome.spent <= mechanism.budget
        for worker, payment in zip(outcome.winners, outcome.payments):
            assert payment >= market.prices[worker]


class TestOnlineCLI:
    def _run(self, capsys, *argv):
        from repro.cli import main

        code = main(["online", *argv])
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_basic_run_prints_outcome(self, capsys):
        code, out, _ = self._run(
            capsys, "--budget", "120", "--stages", "3", "--workers", "60"
        )
        assert code == 0
        assert "online[online-threshold]" in out
        assert "winners=" in out and "thresholds=" in out

    def test_dp_run_reports_charged_epsilon(self, capsys):
        code, out, _ = self._run(
            capsys, "--budget", "120", "--workers", "60", "--dp", "0.9"
        )
        assert code == 0
        assert "online[online-dp]" in out
        assert "charged_epsilon=0.9" in out

    def test_runs_are_seed_deterministic(self, capsys):
        args = ("--budget", "120", "--workers", "60", "--seed", "5")
        _, first, _ = self._run(capsys, *args)
        _, second, _ = self._run(capsys, *args)
        assert first == second

    def test_crash_then_resume_matches_uninterrupted(self, capsys, tmp_path):
        ckpt = str(tmp_path / "ck.jsonl")
        args = ("--budget", "120", "--stages", "3", "--workers", "60")
        _, uninterrupted, _ = self._run(capsys, *args)
        code, _, err = self._run(
            capsys, *args, "--resume", ckpt, "--fault-plan", "crash@1"
        )
        assert code == 3
        assert "re-run the same command to resume" in err
        code, resumed, _ = self._run(capsys, *args, "--resume", ckpt)
        assert code == 0
        assert resumed == uninterrupted

    def test_exhausted_privacy_limit_exits_four(self, capsys):
        code, _, err = self._run(
            capsys, "--budget", "120", "--workers", "60",
            "--dp", "0.9", "--privacy-limit", "0.1",
        )
        assert code == 4
        assert "hint" in err

    def test_degrade_policy_finishes_the_stream(self, capsys):
        code, out, _ = self._run(
            capsys, "--budget", "120", "--workers", "60",
            "--dp", "0.9", "--privacy-limit", "0.35",
            "--on-exhausted", "degrade",
        )
        assert code == 0
        assert "degraded=True" in out

    def test_invalid_churn_exits_two(self, capsys):
        code, _, err = self._run(
            capsys, "--budget", "120", "--workers", "60", "--churn", "1.5"
        )
        assert code == 2
        assert "error" in err


class TestOfflineBenchmark:
    def test_offline_optimum_full_coverage_when_budget_ample(self, market):
        benchmark = offline_optimum(market, budget=1e6)
        assert isinstance(benchmark, OfflineBenchmark)
        assert benchmark.full_coverage
        assert benchmark.value == pytest.approx(market.total_demand())

    def test_offline_optimum_greedy_under_tight_budget(self, market):
        benchmark = offline_optimum(market, budget=float(market.prices.min()) + 0.1)
        assert not benchmark.full_coverage
        assert benchmark.spent <= float(market.prices.min()) + 0.1
        assert 0.0 < benchmark.value < market.total_demand()

    def test_competitive_audit_shapes_and_bound(self, market):
        mechanism = OnlineThresholdMechanism(budget=120.0, n_stages=3)
        report = competitive_audit(mechanism, market, n_permutations=10, seed=3)
        assert report.n_permutations == 10
        assert report.ratios.shape == (10,)
        assert report.bound == analytic_competitive_bound(3)
        assert np.all(report.ratios >= 1.0 - 1e-9)
        assert 0.0 <= report.fraction_within_bound <= 1.0
        assert report.mean_regret == pytest.approx(
            report.offline_value - report.online_values.mean()
        )
