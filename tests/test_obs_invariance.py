"""Outcome-invariance regression: instrumentation never changes results.

The observability layer's core contract is that recorders only *watch*:
attaching a :class:`~repro.obs.MetricsRecorder` must leave every PMF,
price, and winner set bit-identical to an uninstrumented run, and the
metrics merged from a process pool must equal the serial merge.  These
tests pin that contract over 50 seeds and across backends, plus the
ledger bookkeeping the instrumented mechanisms perform per run.
"""

import numpy as np
import pytest

from repro.bench import BENCH_SETTING, BatchAuctionRunner, seeded_auction_batch
from repro.experiments.runner import payment_sweep
from repro.mechanisms.baseline import BaselineAuction
from repro.mechanisms.dp_hsrc import DPHSRCAuction
from repro.mechanisms.dp_variants import PermuteFlipHSRCAuction
from repro.obs import MetricsRecorder, NullRecorder, use_recorder
from repro.workloads.generator import generate_instance

N_SEEDS = 50
EPSILON = 0.4

SETTING = BENCH_SETTING


def _instance(seed: int):
    instance, _pool = generate_instance(
        SETTING, seed=seed, n_workers=24, n_tasks=6
    )
    return instance


def _assert_pmfs_identical(a, b):
    assert np.array_equal(a.prices, b.prices)
    assert np.array_equal(a.probabilities, b.probabilities)
    assert len(a.winner_sets) == len(b.winner_sets)
    for left, right in zip(a.winner_sets, b.winner_sets):
        assert np.array_equal(left, right)


def _assert_outcomes_identical(a, b):
    assert a.price == b.price
    assert np.array_equal(a.winners, b.winners)
    assert a.total_payment == b.total_payment


class TestFiftySeedInvariance:
    """Bit-identical results with no recorder, null recorder, active recorder."""

    @pytest.mark.parametrize(
        "make_mechanism",
        [
            lambda: DPHSRCAuction(epsilon=EPSILON),
            lambda: BaselineAuction(epsilon=EPSILON),
        ],
        ids=["dp-hsrc", "baseline"],
    )
    def test_price_pmf_bit_identical_across_recorders(self, make_mechanism):
        for seed in range(N_SEEDS):
            instance = _instance(seed)
            bare = make_mechanism().price_pmf(instance)
            with use_recorder(NullRecorder()):
                nulled = make_mechanism().price_pmf(instance)
            active = MetricsRecorder()
            with use_recorder(active):
                recorded = make_mechanism().price_pmf(instance)
            _assert_pmfs_identical(bare, nulled)
            _assert_pmfs_identical(bare, recorded)
            assert active.spans, "active recorder saw no spans"

    def test_run_outcomes_bit_identical_across_recorders(self):
        mechanism = DPHSRCAuction(epsilon=EPSILON)
        for seed in range(N_SEEDS):
            instance = _instance(seed)
            bare = mechanism.run(instance, seed=seed)
            with use_recorder(MetricsRecorder()):
                recorded = mechanism.run(instance, seed=seed)
            _assert_outcomes_identical(bare, recorded)

    def test_permute_flip_outcomes_invariant_too(self):
        mechanism = PermuteFlipHSRCAuction(epsilon=EPSILON)
        for seed in range(10):
            instance = _instance(seed)
            bare = mechanism.run(instance, seed=seed)
            with use_recorder(MetricsRecorder()):
                recorded = mechanism.run(instance, seed=seed)
            _assert_outcomes_identical(bare, recorded)


class TestLedgerAccounting:
    def test_one_entry_per_run_at_the_configured_epsilon(self):
        rec = MetricsRecorder()
        mechanism = DPHSRCAuction(epsilon=EPSILON)
        n_runs = 5
        with use_recorder(rec):
            for seed in range(n_runs):
                mechanism.run(_instance(seed), seed=seed)
        assert len(rec.ledger) == n_runs
        assert all(e.mechanism == "dp-hsrc" for e in rec.ledger.entries)
        assert all(e.epsilon == EPSILON for e in rec.ledger.entries)
        assert rec.ledger.total_epsilon == pytest.approx(n_runs * EPSILON)

    def test_permute_flip_records_its_own_name_not_the_winner_stage(self):
        """The discarded winner-stage PMF must not double-count ε."""
        rec = MetricsRecorder()
        with use_recorder(rec):
            PermuteFlipHSRCAuction(epsilon=EPSILON).run(_instance(0), seed=0)
        assert [e.mechanism for e in rec.ledger.entries] == ["dp-hsrc-pf"]
        assert rec.ledger.total_epsilon == pytest.approx(EPSILON)

    def test_expected_span_kinds_present(self):
        rec = MetricsRecorder()
        with use_recorder(rec):
            DPHSRCAuction(epsilon=EPSILON).run(_instance(3), seed=3)
        kinds = set(rec.span_counts_by_kind())
        assert {"price_set", "greedy_group", "exp_mech", "sample"} <= kinds
        assert rec.counters["auction.runs"] == 1.0
        assert rec.counters["greedy.iterations"] > 0
        assert rec.counters["greedy.candidates_scanned"] > 0
        assert rec.histograms["greedy.residual_demand"]


class TestBatchBackendMetricEquality:
    @pytest.fixture(scope="class")
    def batch(self):
        return seeded_auction_batch(8, n_workers=24, n_tasks=6, seed=77)

    def test_serial_and_process_merge_identical_metrics(self, batch):
        mechanism = DPHSRCAuction(epsilon=EPSILON)
        serial_rec = MetricsRecorder()
        serial = BatchAuctionRunner(mechanism, backend="serial").run(
            batch, seed=5, recorder=serial_rec
        )
        pooled_rec = MetricsRecorder()
        pooled = BatchAuctionRunner(mechanism, backend="process", max_workers=2).run(
            batch, seed=5, recorder=pooled_rec
        )
        for left, right in zip(serial.outcomes, pooled.outcomes):
            _assert_outcomes_identical(left, right)
        # Counters, histograms, and ledger trails merge identically;
        # only span wall-clock may differ between backends.
        assert serial_rec.counters == pooled_rec.counters
        assert serial_rec.histograms == pooled_rec.histograms
        assert (
            serial_rec.ledger.snapshot()["entries"]
            == pooled_rec.ledger.snapshot()["entries"]
        )
        assert serial_rec.span_counts_by_kind() == pooled_rec.span_counts_by_kind()
        assert len(serial_rec.ledger) == len(batch)

    def test_recorder_does_not_change_batch_outcomes(self, batch):
        mechanism = DPHSRCAuction(epsilon=EPSILON)
        runner = BatchAuctionRunner(mechanism, backend="serial")
        bare = runner.run(batch, seed=5)
        watched = runner.run(batch, seed=5, recorder=MetricsRecorder())
        for left, right in zip(bare.outcomes, watched.outcomes):
            _assert_outcomes_identical(left, right)

    def test_ambient_recorder_is_picked_up(self, batch):
        rec = MetricsRecorder()
        with use_recorder(rec):
            BatchAuctionRunner(DPHSRCAuction(epsilon=EPSILON)).run(batch, seed=5)
        assert rec.counters["batch.instances"] == len(batch)
        assert rec.span_counts_by_kind()["batch"] == 1


class TestSweepBackendMetricEquality:
    def test_serial_and_pooled_sweeps_merge_identical_metrics(self):
        mechanisms = {"DP-hSRC": DPHSRCAuction(epsilon=EPSILON)}
        points = [(18, 5), (22, 5), (26, 5)]
        kwargs = dict(n_price_samples=200, seed=13)
        serial_rec = MetricsRecorder()
        serial = payment_sweep(
            SETTING, mechanisms, points, recorder=serial_rec, **kwargs
        )
        pooled_rec = MetricsRecorder()
        pooled = payment_sweep(
            SETTING, mechanisms, points, max_workers=2, recorder=pooled_rec, **kwargs
        )
        for left, right in zip(serial, pooled):
            assert left.keys() == right.keys()
            for name in left:
                assert left[name].mean == right[name].mean
                assert left[name].std == right[name].std
        assert serial_rec.counters == pooled_rec.counters
        assert serial_rec.histograms == pooled_rec.histograms
        assert (
            serial_rec.ledger.snapshot()["entries"]
            == pooled_rec.ledger.snapshot()["entries"]
        )
        assert serial_rec.counters["sweep.points"] == len(points)
