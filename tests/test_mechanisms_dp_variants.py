"""Unit tests for repro.mechanisms.dp_variants (permute-and-flip DP-hSRC)."""

import numpy as np
import pytest

from repro.mechanisms.dp_hsrc import DPHSRCAuction
from repro.mechanisms.dp_variants import PermuteFlipHSRCAuction
from repro.workloads.generator import generate_instance


class TestPermuteFlipHSRC:
    def test_same_winner_schedule_as_exponential(self, toy_instance):
        pf = PermuteFlipHSRCAuction(epsilon=0.5).price_pmf(toy_instance)
        em = DPHSRCAuction(epsilon=0.5).price_pmf(toy_instance)
        assert np.allclose(pf.prices, em.prices)
        assert all(
            np.array_equal(a, b) for a, b in zip(pf.winner_sets, em.winner_sets)
        )

    def test_toy_pmf_is_exact_permute_flip(self, toy_instance):
        from repro.mechanisms.dp_hsrc import payment_score_sensitivity
        from repro.privacy.selection import permute_and_flip_pmf_exact

        pf = PermuteFlipHSRCAuction(epsilon=0.5).price_pmf(toy_instance)
        expected = permute_and_flip_pmf_exact(
            -pf.total_payments, 0.5, payment_score_sensitivity(toy_instance)
        )
        assert np.allclose(pf.probabilities, expected)

    def test_expected_payment_never_worse_than_exponential(self, toy_instance):
        """The dominance theorem, in auction terms, on the exact toy PMFs."""
        pf = PermuteFlipHSRCAuction(epsilon=0.5).price_pmf(toy_instance)
        em = DPHSRCAuction(epsilon=0.5).price_pmf(toy_instance)
        assert pf.expected_total_payment() <= em.expected_total_payment() + 1e-9

    def test_run_outcome_is_feasible(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=0)
        outcome = PermuteFlipHSRCAuction(epsilon=0.5).run(instance, seed=1)
        coverage = instance.effective_quality[outcome.winners].sum(axis=0)
        assert np.all(coverage >= instance.demands - 1e-9)
        asked = instance.prices[outcome.winners]
        assert np.all(asked <= outcome.price + 1e-9)

    def test_run_reproducible(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=1)
        auction = PermuteFlipHSRCAuction(epsilon=0.5)
        assert auction.run(instance, seed=2).price == auction.run(instance, seed=2).price

    def test_monte_carlo_pmf_for_large_support(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=0)
        pmf = PermuteFlipHSRCAuction(epsilon=0.5, pmf_samples=2_000).price_pmf(instance)
        assert pmf.probabilities.sum() == pytest.approx(1.0)

    def test_bad_epsilon_rejected(self):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            PermuteFlipHSRCAuction(epsilon=0.0)
