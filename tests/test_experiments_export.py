"""Tests for result exports (repro.experiments.export) and CLI plumbing."""

import csv
import io
import json

import pytest

from repro.experiments.export import FORMATS, render, to_csv, to_json
from repro.experiments.runner import ExperimentResult


@pytest.fixture
def result():
    return ExperimentResult(
        name="demo",
        title="Demo result",
        headers=["x", "value"],
        rows=[(1, 2.5), (2, float("inf")), (3, float("nan"))],
        notes=("a note",),
    )


class TestCSV:
    def test_round_trips_through_csv_reader(self, result):
        text = to_csv(result)
        data_lines = [l for l in text.splitlines() if not l.startswith("#")]
        rows = list(csv.reader(io.StringIO("\n".join(data_lines))))
        assert rows[0] == ["x", "value"]
        assert rows[1] == ["1", "2.5"]

    def test_notes_as_comments(self, result):
        assert "# a note" in to_csv(result)

    def test_nonfinite_serialized_as_strings(self, result):
        text = to_csv(result)
        assert "inf" in text and "nan" in text


class TestJSON:
    def test_valid_json_with_metadata(self, result):
        payload = json.loads(to_json(result))
        assert payload["name"] == "demo"
        assert payload["headers"] == ["x", "value"]
        assert payload["rows"][0] == [1, 2.5]
        assert payload["notes"] == ["a note"]

    def test_nonfinite_values_stringified(self, result):
        payload = json.loads(to_json(result))
        assert payload["rows"][1][1] == "inf"
        assert payload["rows"][2][1] == "nan"

    def test_numpy_scalars_coerced(self):
        import numpy as np

        result = ExperimentResult(
            name="np", title="t", headers=["a"], rows=[(np.float64(1.5),)]
        )
        payload = json.loads(to_json(result))
        assert payload["rows"][0][0] == 1.5


class TestRender:
    def test_all_formats(self, result):
        for fmt in FORMATS:
            assert render(result, fmt)

    def test_table_format_delegates(self, result):
        assert "Demo result" in render(result, "table")

    def test_unknown_format(self, result):
        with pytest.raises(ValueError, match="unknown format"):
            render(result, "xml")


class TestCLIFormats:
    def test_csv_to_stdout(self, capsys):
        from repro.cli import main

        assert main(["table1", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("setting,")

    def test_json_to_file(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "t1.json"
        assert main(["table1", "--format", "json", "--output", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["name"] == "table1"

    def test_output_with_all_rejected(self, capsys):
        from repro.cli import main

        assert main(["all", "--output", "x.txt"]) == 2
        assert "single experiment" in capsys.readouterr().err
