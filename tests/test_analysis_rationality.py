"""Unit tests for repro.analysis.rationality (Theorem 4 audits)."""

import numpy as np
import pytest

from repro.analysis.rationality import rationality_audit
from repro.auction.mechanism import PricePMF
from repro.mechanisms.baseline import BaselineAuction
from repro.mechanisms.dp_hsrc import DPHSRCAuction
from repro.workloads.generator import generate_instance


class TestRationalityAudit:
    @pytest.mark.parametrize("mechanism_cls", [DPHSRCAuction, BaselineAuction])
    def test_holds_for_both_private_mechanisms(self, tiny_setting, mechanism_cls):
        instance, _ = generate_instance(tiny_setting, seed=0)
        pmf = mechanism_cls(epsilon=0.5).price_pmf(instance)
        report = rationality_audit(pmf, instance)
        assert report.satisfied
        assert report.min_margin >= 0.0
        assert report.violations == ()

    def test_detects_violation(self, toy_instance):
        """A hand-built PMF paying a winner below her ask must be flagged."""
        bad_pmf = PricePMF(
            prices=np.array([2.0]),
            probabilities=np.array([1.0]),
            winner_sets=(np.array([2]),),  # worker 2 asks 3.0 > price 2.0
            n_workers=3,
        )
        report = rationality_audit(bad_pmf, toy_instance)
        assert not report.satisfied
        assert report.min_margin == pytest.approx(-1.0)
        assert (0, 2) in report.violations

    def test_empty_winner_sets_are_fine(self, toy_instance):
        pmf = PricePMF(
            prices=np.array([2.0]),
            probabilities=np.array([1.0]),
            winner_sets=(np.array([], dtype=int),),
            n_workers=3,
        )
        report = rationality_audit(pmf, toy_instance)
        assert report.satisfied
        assert report.min_margin == 0.0

    def test_min_margin_value(self, toy_instance):
        pmf = PricePMF(
            prices=np.array([3.0]),
            probabilities=np.array([1.0]),
            winner_sets=(np.array([0, 1]),),  # asks 1.0 and 2.0
            n_workers=3,
        )
        report = rationality_audit(pmf, toy_instance)
        assert report.min_margin == pytest.approx(1.0)  # 3.0 - 2.0
