"""SweepEngine cache semantics: identity keying, LRU, scoping, staleness.

Complements ``test_engine_golden.py`` (which pins *what* the plans
contain) by pinning *how* the cache behaves: hit/miss accounting, the
bounded LRU, the identity-keyed staleness guarantee across
``replace_bid`` neighbors, ``scoped_engine``'s policy inheritance, and
outcome invariance across batch backends with the cache in play.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auction.bids import Bid
from repro.bench import BatchAuctionRunner, seeded_auction_batch
from repro.engine import (
    DEFAULT_ENGINE,
    SweepEngine,
    current_engine,
    scoped_engine,
    use_engine,
)
from repro.engine.reference import reference_dp_hsrc_pmf
from repro.coverage.greedy import greedy_cover, static_order_cover
from repro.mechanisms.dp_hsrc import DPHSRCAuction
from repro.obs import MetricsRecorder, use_recorder


@pytest.fixture(scope="module")
def instances():
    return seeded_auction_batch(6, n_workers=35, n_tasks=7, seed=99)


def assert_pmf_equal(actual, expected):
    assert np.array_equal(actual.prices, expected.prices)
    assert np.array_equal(actual.probabilities, expected.probabilities)
    for a, e in zip(actual.winner_sets, expected.winner_sets):
        assert np.array_equal(a, e)


class TestCacheAccounting:
    def test_plan_hits_misses_and_recorder_counters(self, instances):
        instance = instances[0]
        recorder = MetricsRecorder()
        with use_recorder(recorder), use_engine(SweepEngine()) as engine:
            engine.plan(instance, greedy_cover)
            engine.plan(instance, greedy_cover)
            engine.plan(instance, static_order_cover)  # new solver: miss
        assert (engine.hits, engine.misses) == (1, 2)
        assert recorder.counters["engine.plan.hits"] == 1.0
        assert recorder.counters["engine.plan.misses"] == 2.0
        # The static-order plan reused the greedy plan's price grouping.
        assert recorder.counters["engine.grouping.hits"] == 1.0
        assert recorder.counters["engine.grouping.misses"] == 1.0

    def test_cache_disabled_every_lookup_misses(self, instances):
        instance = instances[0]
        with use_engine(SweepEngine(cache=False)) as engine:
            a = engine.plan(instance, greedy_cover)
            b = engine.plan(instance, greedy_cover)
        assert (engine.hits, engine.misses) == (0, 2)
        assert a is not b
        assert np.array_equal(a.prices, b.prices)

    def test_lru_eviction_bounds_the_cache(self, instances):
        with use_engine(SweepEngine(max_plans=2)) as engine:
            for instance in instances[:4]:
                engine.plan(instance, greedy_cover)
            assert engine.evictions == 2
            # Evicted entries rebuild correctly (and count a fresh miss).
            pmf = DPHSRCAuction(epsilon=0.1).price_pmf(instances[0])
        assert engine.misses == 5
        assert_pmf_equal(pmf, reference_dp_hsrc_pmf(instances[0], 0.1))


class TestCacheOnOffEquivalence:
    @given(seed=st.integers(0, 50), epsilon=st.sampled_from([0.1, 1.0, 5.0]))
    @settings(max_examples=15, deadline=None)
    def test_pmf_is_bit_identical_with_and_without_cache(self, seed, epsilon):
        [instance] = seeded_auction_batch(1, n_workers=25, n_tasks=5, seed=seed)
        auction = DPHSRCAuction(epsilon=epsilon)
        with use_engine(SweepEngine()):
            cached = auction.price_pmf(instance)
            cached_again = auction.price_pmf(instance)
        with use_engine(SweepEngine(cache=False)):
            uncached = auction.price_pmf(instance)
        assert_pmf_equal(cached, uncached)
        assert_pmf_equal(cached_again, uncached)


class TestReplaceBidStaleness:
    def test_neighbor_never_sees_the_original_plan(self, instances):
        """replace_bid returns a new identity, so its plan is a fresh miss."""
        instance = instances[0]
        auction = DPHSRCAuction(epsilon=0.1)
        bid = instance.bids[0]
        neighbor = instance.replace_bid(0, Bid(bid.bundle, bid.price * 1.5))
        with use_engine(SweepEngine()) as engine:
            pmf = auction.price_pmf(instance)
            neighbor_pmf = auction.price_pmf(neighbor)
        assert (engine.hits, engine.misses) == (0, 2)
        assert_pmf_equal(pmf, reference_dp_hsrc_pmf(instance, 0.1))
        assert_pmf_equal(neighbor_pmf, reference_dp_hsrc_pmf(neighbor, 0.1))

    @given(worker=st.integers(0, 34), scale=st.sampled_from([0.5, 0.9, 1.1, 2.0]))
    @settings(max_examples=20, deadline=None)
    def test_neighbor_pmfs_match_reference_under_a_shared_engine(self, worker, scale):
        [instance] = seeded_auction_batch(1, n_workers=35, n_tasks=7, seed=7)
        bid = instance.bids[worker]
        neighbor = instance.replace_bid(worker, Bid(bid.bundle, bid.price * scale))
        auction = DPHSRCAuction(epsilon=0.1)
        with use_engine(SweepEngine()):
            auction.price_pmf(instance)  # warm the cache with the original
            shared = auction.price_pmf(neighbor)
        assert_pmf_equal(shared, reference_dp_hsrc_pmf(neighbor, 0.1))


class TestScopedEngine:
    def test_default_ambient_yields_a_caching_engine(self):
        assert current_engine() is DEFAULT_ENGINE
        scoped = scoped_engine()
        assert scoped is not DEFAULT_ENGINE
        assert scoped.cache is True

    def test_pass_through_ambient_propagates_no_cache(self):
        with use_engine(SweepEngine(cache=False)):
            scoped = scoped_engine()
        assert scoped.cache is False

    def test_caching_ambient_yields_an_empty_clone(self, instances):
        with use_engine(SweepEngine(max_plans=3)) as ambient:
            ambient.plan(instances[0], greedy_cover)
            scoped = scoped_engine()
        assert scoped is not ambient
        assert scoped.cache is True and scoped.max_plans == 3
        assert (scoped.hits, scoped.misses) == (0, 0)


class TestBatchBackends:
    def test_serial_and_process_agree_with_the_plan_cache(self, instances):
        mechanism = DPHSRCAuction(epsilon=0.1)
        serial = BatchAuctionRunner(mechanism, backend="serial").run(instances, seed=3)
        pooled = BatchAuctionRunner(mechanism, backend="process", max_workers=2).run(
            instances, seed=3
        )
        for left, right in zip(serial.outcomes, pooled.outcomes):
            assert left.price == right.price
            assert np.array_equal(left.winners, right.winners)

    def test_backends_agree_under_an_ambient_no_cache_engine(self, instances):
        mechanism = DPHSRCAuction(epsilon=0.1)
        baseline = BatchAuctionRunner(mechanism, backend="serial").run(
            instances, seed=3
        )
        with use_engine(SweepEngine(cache=False)):
            serial = BatchAuctionRunner(mechanism, backend="serial").run(
                instances, seed=3
            )
        for left, right in zip(baseline.outcomes, serial.outcomes):
            assert left.price == right.price
            assert np.array_equal(left.winners, right.winners)
