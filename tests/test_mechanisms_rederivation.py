"""Re-derivation tests: rebuild Algorithm 1's outputs from first principles.

The strongest consistency check available: for random instances,
independently recompute what the paper says each piece should be —
affordable sets, greedy winner sets, Equation 10 weights — using only
numpy and the instance, and demand exact agreement with the library's
pipeline output.
"""

import numpy as np
import pytest

from repro.coverage.greedy import greedy_cover
from repro.coverage.problem import CoverProblem
from repro.mechanisms.dp_hsrc import DPHSRCAuction
from repro.mechanisms.price_set import feasible_price_set
from repro.workloads.generator import generate_instance


@pytest.mark.parametrize("seed", range(5))
def test_pmf_rederivation_from_first_principles(tiny_setting, seed):
    epsilon = 0.7
    instance, _pool = generate_instance(tiny_setting, seed=seed)
    pmf = DPHSRCAuction(epsilon=epsilon).price_pmf(instance)

    # --- Re-derive the feasible price set: a grid price is feasible iff
    # the workers asking <= it can jointly cover every demand.
    expected_prices = []
    for price in instance.price_grid:
        affordable = instance.prices <= price + 1e-12
        coverage = instance.effective_quality[affordable].sum(axis=0)
        if np.all(coverage >= instance.demands - 1e-9):
            expected_prices.append(float(price))
    assert pmf.prices.tolist() == pytest.approx(expected_prices)

    # --- Re-derive each price's winner set with a fresh greedy run over
    # exactly the affordable workers.
    for k, price in enumerate(pmf.prices):
        affordable = np.flatnonzero(instance.prices <= price + 1e-12)
        problem = CoverProblem(
            gains=instance.effective_quality[affordable],
            demands=instance.demands,
        )
        local = greedy_cover(problem).selection
        assert pmf.winner_sets[k].tolist() == sorted(affordable[local].tolist())

    # --- Re-derive Equation 10's distribution.
    n, c_max = instance.n_workers, instance.c_max
    sizes = np.array([s.size for s in pmf.winner_sets], dtype=float)
    logits = -epsilon * pmf.prices * sizes / (2.0 * n * c_max)
    weights = np.exp(logits - logits.max())
    expected_probs = weights / weights.sum()
    assert np.allclose(pmf.probabilities, expected_probs, atol=1e-12)


@pytest.mark.parametrize("seed", range(3))
def test_feasible_price_set_matches_linear_scan(tiny_setting, seed):
    """Binary search vs brute-force linear scan over the grid."""
    instance, _pool = generate_instance(tiny_setting, seed=seed)
    fast = feasible_price_set(instance)
    slow = [
        float(p)
        for p in instance.price_grid
        if np.all(
            instance.effective_quality[instance.prices <= p + 1e-12].sum(axis=0)
            >= instance.demands - 1e-9
        )
    ]
    assert fast.tolist() == pytest.approx(slow)
