"""Hypothesis property suite for the online threshold mechanisms.

Each property drives a whole random market (a hypothesis-chosen seed into
the workload generator keeps instance structure realistic) through the
streaming mechanisms and asserts the online-auction invariants on every
outcome:

* hard budget feasibility on **every prefix** of the arrival stream;
* monotone non-increasing stage thresholds;
* individual rationality — winners are paid at least their ask, losers
  exactly zero;
* irrevocability — a partial run is a bit-exact prefix of the full run,
  and replays are bit-identical;
* truthfulness — each winner's payment is her critical payment: asking
  anything at or below it leaves her decision *and* payment unchanged,
  asking above it makes her lose.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auction.bids import Bid
from repro.mechanisms.online import (
    DPOnlineThresholdMechanism,
    OnlineThresholdMechanism,
)
from repro.workloads import OnlineArrivalStream, generate_instance
from repro.workloads.settings import SimulationSetting

TINY = SimulationSetting(
    name="online-prop",
    epsilon=0.5,
    c_min=1.0,
    c_max=10.0,
    bundle_size=(3, 5),
    skill_range=(0.3, 0.95),
    error_threshold_range=(0.3, 0.5),
    n_workers=20,
    n_tasks=5,
    price_range=(4.0, 10.0),
    grid_step=0.5,
)

BUDGETS = st.floats(10.0, 200.0)
STAGES = st.integers(1, 5)
SEEDS = st.integers(0, 10_000)


def _build(seed, budget, n_stages, order="uniform", dp_epsilon=None):
    instance, _pool = generate_instance(TINY, seed=seed)
    stream = OnlineArrivalStream(instance, order=order, seed=seed + 1)
    if dp_epsilon is None:
        mechanism = OnlineThresholdMechanism(budget=budget, n_stages=n_stages)
    else:
        mechanism = DPOnlineThresholdMechanism(
            budget=budget, epsilon=dp_epsilon, n_stages=n_stages, record_ledger=False
        )
    return instance, stream, mechanism


class TestPrefixBudgetFeasibility:
    @given(seed=SEEDS, budget=BUDGETS, n_stages=STAGES)
    @settings(max_examples=30, deadline=None)
    def test_budget_never_exceeded_on_any_prefix(self, seed, budget, n_stages):
        instance, stream, mechanism = _build(seed, budget, n_stages)
        outcome = mechanism.run(stream, seed=seed)
        # Payments commit in arrival order, so the running total over the
        # acceptance sequence is exactly the spend after each prefix.
        running = 0.0
        for payment in outcome.payments:
            running += payment
            assert running <= budget + 1e-9
        assert outcome.spent == pytest.approx(running)

    @given(seed=SEEDS, budget=BUDGETS, n_stages=STAGES, order=st.sampled_from(
        ["uniform", "as_given", "adversarial", "bursty"]))
    @settings(max_examples=30, deadline=None)
    def test_budget_holds_under_every_arrival_order(
        self, seed, budget, n_stages, order
    ):
        instance, stream, mechanism = _build(seed, budget, n_stages, order=order)
        outcome = mechanism.run(stream, seed=seed)
        assert outcome.spent <= budget + 1e-9

    @given(seed=SEEDS, budget=BUDGETS, n_stages=STAGES)
    @settings(max_examples=20, deadline=None)
    def test_dp_variant_respects_budget(self, seed, budget, n_stages):
        instance, stream, mechanism = _build(seed, budget, n_stages, dp_epsilon=1.0)
        outcome = mechanism.run(stream, seed=seed)
        assert outcome.spent <= budget + 1e-9

    @given(seed=SEEDS, budget=BUDGETS, n_stages=STAGES)
    @settings(max_examples=20, deadline=None)
    def test_stage_prefixes_respect_stage_allocations(self, seed, budget, n_stages):
        instance, stream, mechanism = _build(seed, budget, n_stages)
        for upto in range(1, n_stages + 1):
            partial = mechanism.run_stages(stream, seed=seed, upto=upto)
            assert partial.spent <= mechanism.stage_allocation(upto - 1) + 1e-9


class TestMonotoneThresholds:
    @given(seed=SEEDS, budget=BUDGETS, n_stages=STAGES)
    @settings(max_examples=30, deadline=None)
    def test_thresholds_non_increasing(self, seed, budget, n_stages):
        instance, stream, mechanism = _build(seed, budget, n_stages)
        outcome = mechanism.run(stream, seed=seed)
        assert len(outcome.thresholds) == n_stages
        for earlier, later in zip(outcome.thresholds, outcome.thresholds[1:]):
            assert later <= earlier

    @given(seed=SEEDS, budget=BUDGETS, n_stages=STAGES)
    @settings(max_examples=20, deadline=None)
    def test_dp_thresholds_non_increasing(self, seed, budget, n_stages):
        instance, stream, mechanism = _build(seed, budget, n_stages, dp_epsilon=0.8)
        outcome = mechanism.run(stream, seed=seed)
        for earlier, later in zip(outcome.thresholds, outcome.thresholds[1:]):
            assert later <= earlier


class TestIndividualRationality:
    @given(seed=SEEDS, budget=BUDGETS, n_stages=STAGES)
    @settings(max_examples=30, deadline=None)
    def test_winners_paid_at_least_ask_losers_paid_zero(
        self, seed, budget, n_stages
    ):
        instance, stream, mechanism = _build(seed, budget, n_stages)
        outcome = mechanism.run(stream, seed=seed)
        vector = outcome.payment_vector()
        winners = set(outcome.winners)
        for worker in range(instance.n_workers):
            if worker in winners:
                assert vector[worker] >= instance.prices[worker]
            else:
                assert vector[worker] == 0.0

    @given(seed=SEEDS, budget=BUDGETS, n_stages=STAGES)
    @settings(max_examples=20, deadline=None)
    def test_dp_winners_paid_at_least_ask(self, seed, budget, n_stages):
        instance, stream, mechanism = _build(seed, budget, n_stages, dp_epsilon=1.2)
        outcome = mechanism.run(stream, seed=seed)
        for worker, payment in zip(outcome.winners, outcome.payments):
            assert payment >= instance.prices[worker]


class TestIrrevocabilityAndReplay:
    @given(seed=SEEDS, budget=BUDGETS, n_stages=STAGES)
    @settings(max_examples=25, deadline=None)
    def test_replay_bit_identical(self, seed, budget, n_stages):
        _, stream_a, mechanism = _build(seed, budget, n_stages)
        _, stream_b, _ = _build(seed, budget, n_stages)
        assert mechanism.run(stream_a, seed=seed) == mechanism.run(
            stream_b, seed=seed
        )

    @given(seed=SEEDS, budget=BUDGETS, n_stages=STAGES)
    @settings(max_examples=20, deadline=None)
    def test_partial_runs_are_exact_prefixes(self, seed, budget, n_stages):
        instance, stream, mechanism = _build(seed, budget, n_stages)
        full = mechanism.run(stream, seed=seed)
        for upto in range(1, n_stages + 1):
            partial = mechanism.run_stages(stream, seed=seed, upto=upto)
            n = partial.next_arrival
            assert tuple(partial.decisions) == full.decisions[:n]
            # Committed winners/payments never change later (irrevocable).
            assert tuple(partial.winners) == full.winners[: len(partial.winners)]
            assert tuple(partial.payments) == full.payments[: len(partial.payments)]

    @given(seed=SEEDS, budget=BUDGETS, n_stages=STAGES)
    @settings(max_examples=15, deadline=None)
    def test_fast_screen_equivalence(self, seed, budget, n_stages):
        instance, stream, _ = _build(seed, budget, n_stages)
        screened = OnlineThresholdMechanism(budget=budget, n_stages=n_stages).run(
            stream, seed=seed
        )
        reference = OnlineThresholdMechanism(
            budget=budget, n_stages=n_stages, fast_screen=False
        ).run(stream, seed=seed)
        assert screened == reference


class TestTruthfulness:
    """Critical-payment truthfulness via bid perturbation.

    Under a bid-independent arrival order, a worker's ask influences
    only her own accept check (the posted price never reads the ask), so
    the payment is exactly her critical value: any ask ≤ payment wins at
    the same payment, any ask > payment loses.
    """

    @given(seed=SEEDS, budget=BUDGETS, n_stages=STAGES, shrink=st.floats(0.0, 1.0))
    @settings(max_examples=25, deadline=None)
    def test_underbidding_never_changes_a_winners_payment(
        self, seed, budget, n_stages, shrink
    ):
        instance, stream, mechanism = _build(seed, budget, n_stages)
        outcome = mechanism.run(stream, seed=seed)
        if not outcome.winners:
            return
        worker = outcome.winners[len(outcome.winners) // 2]
        payment = dict(zip(outcome.winners, outcome.payments))[worker]
        new_ask = shrink * min(payment, instance.prices[worker])
        neighbor = instance.replace_bid(
            worker, Bid(sorted(instance.bids[worker].bundle), new_ask)
        )
        perturbed = mechanism.run(stream.with_instance(neighbor), seed=seed)
        assert worker in perturbed.winners
        assert dict(zip(perturbed.winners, perturbed.payments))[worker] == payment

    @given(seed=SEEDS, budget=BUDGETS, n_stages=STAGES)
    @settings(max_examples=25, deadline=None)
    def test_overbidding_past_the_critical_payment_loses(
        self, seed, budget, n_stages
    ):
        instance, stream, mechanism = _build(seed, budget, n_stages)
        outcome = mechanism.run(stream, seed=seed)
        if not outcome.winners:
            return
        worker = outcome.winners[0]
        payment = dict(zip(outcome.winners, outcome.payments))[worker]
        assert math.isfinite(payment)
        neighbor = instance.replace_bid(
            worker,
            Bid(sorted(instance.bids[worker].bundle), payment * (1 + 1e-9) + 0.01),
        )
        perturbed = mechanism.run(stream.with_instance(neighbor), seed=seed)
        assert worker not in perturbed.winners
