"""Public-API surface tests: exports, docstrings, and __all__ hygiene.

A library's public face is part of its behaviour: every name promised in
``__all__`` must resolve, every public module/class/function must carry a
docstring, and the headline imports in the README must keep working.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.auction",
    "repro.coverage",
    "repro.privacy",
    "repro.aggregation",
    "repro.mcs",
    "repro.mechanisms",
    "repro.analysis",
    "repro.workloads",
    "repro.experiments",
    "repro.campaign",
    "repro.engine",
    "repro.bench",
    "repro.obs",
    "repro.resilience",
    "repro.utils",
]


class TestAllExportsResolve:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_every_all_name_exists(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.__all__ lists missing {name!r}"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_package_has_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__.strip()) > 20


class TestPublicDocstrings:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_exported_objects_documented(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{package}.{name} lacks a docstring"

    def test_public_methods_documented(self):
        from repro import (
            AuctionInstance,
            AuctionOutcome,
            BidProfile,
            DPHSRCAuction,
            PricePMF,
        )

        for cls in (AuctionInstance, AuctionOutcome, BidProfile, DPHSRCAuction, PricePMF):
            for name, member in inspect.getmembers(cls):
                if name.startswith("_"):
                    continue
                if inspect.isfunction(member):
                    assert member.__doc__, f"{cls.__name__}.{name} lacks a docstring"


class TestReadmeImports:
    def test_quickstart_imports(self):
        from repro import (  # noqa: F401
            DPHSRCAuction,
            SETTING_I,
            generate_instance,
            optimal_total_payment,
        )

    def test_extension_imports(self):
        from repro import (  # noqa: F401
            PermuteFlipHSRCAuction,
            ThresholdPaymentAuction,
            plan_campaign,
        )
        from repro.coverage import covering_lp_simplex  # noqa: F401
        from repro.workloads import generate_geo_market  # noqa: F401

    def test_version_is_pep440ish(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) >= 2
        assert all(p.isdigit() for p in parts[:2])
