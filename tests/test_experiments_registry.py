"""The experiment registry must exactly mirror the modules on disk."""

import importlib
import pkgutil

import pytest

import repro.experiments as experiments_pkg
from repro.experiments import EXPERIMENTS, REGISTRY, experiment_spec

#: Infrastructure modules inside repro.experiments that are not
#: experiments themselves (no registry entry, no ``run()`` contract).
SUPPORT_MODULES = {
    "export",
    "figure_payment",
    "registry",
    "report",
    "runner",
    "trials",
}


def _modules_on_disk() -> set[str]:
    return {
        info.name
        for info in pkgutil.iter_modules(experiments_pkg.__path__)
        if info.name not in SUPPORT_MODULES
    }


class TestRegistryMatchesDisk:
    def test_registry_names_equal_experiment_modules(self):
        assert set(EXPERIMENTS) == _modules_on_disk()

    @pytest.mark.parametrize("name", EXPERIMENTS)
    def test_every_experiment_module_exposes_run(self, name):
        module = importlib.import_module(f"repro.experiments.{name}")
        assert callable(getattr(module, "run", None)), (
            f"repro.experiments.{name} has no run() but is in the registry"
        )

    def test_support_modules_do_not_expose_run(self):
        """A module growing run() must be promoted into the registry."""
        for name in SUPPORT_MODULES:
            module = importlib.import_module(f"repro.experiments.{name}")
            assert not callable(getattr(module, "run", None)), (
                f"repro.experiments.{name} exposes run() but is unregistered"
            )


class TestRegistryContents:
    def test_specs_have_artifact_and_summary(self):
        for spec in REGISTRY:
            assert spec.artifact, f"{spec.name} is missing an artifact title"
            assert spec.summary, f"{spec.name} is missing a summary"
            assert spec.commentary, f"{spec.name} is missing commentary"

    def test_doc_ranks_are_a_permutation(self):
        """EXPERIMENTS.md section order is total and unambiguous."""
        ranks = sorted(spec.doc_rank for spec in REGISTRY)
        assert ranks == list(range(len(REGISTRY)))

    def test_spec_lookup(self):
        assert experiment_spec("table1").name == "table1"
        with pytest.raises(ValueError, match="figure1"):
            experiment_spec("nope")


class TestExperimentsListCLI:
    def test_list_prints_every_registry_entry(self, capsys):
        from repro.cli import main

        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.strip()]
        assert len(lines) == len(REGISTRY)
        for spec, line in zip(REGISTRY, lines):
            assert line.startswith(spec.name)
            assert spec.summary in line

    def test_list_flag_required(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["experiments"])
        assert excinfo.value.code == 2
