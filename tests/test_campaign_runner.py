"""Tests for the campaign runner: artifacts, resume, budget tenants."""

import json

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    CellSpec,
    build_report,
    decode_result,
    encode_result,
    render_report,
    report_json,
)
from repro.campaign.artifacts import read_cell_result
from repro.campaign.cells import CELL_KINDS, CellKind, register_cell_kind
from repro.exceptions import InstanceExecutionError, ValidationError
from repro.experiments.runner import ExperimentResult
from repro.privacy.budget import InMemoryBudgetStore, use_budget_store
from repro.privacy.budget.context import current_budget_scope
from repro.resilience.faults import FaultPlan


@pytest.fixture
def toy_kind():
    """A registered instant cell kind recording each run's budget tenant."""
    seen_tenants: list[str] = []

    def runner(cell, context):
        seen_tenants.append(current_budget_scope().tenant)
        value = float(cell.knobs.get("value", 1.0))
        return ExperimentResult(
            name=cell.name,
            title=f"toy {cell.name}",
            headers=["x", "y"],
            rows=[(1, value), (2, value * 2)],
            notes=(f"seed={context.seed}",),
        )

    kind = CellKind(name="toy_test_kind", summary="instant test cell", runner=runner)
    register_cell_kind(kind)
    try:
        yield seen_tenants
    finally:
        del CELL_KINDS["toy_test_kind"]


def toy_spec(n=3, **spec_kwargs):
    return CampaignSpec(
        name="toyspec",
        cells=tuple(
            CellSpec(name=f"cell{i}", kind="toy_test_kind", knobs={"value": i + 1.0})
            for i in range(n)
        ),
        **spec_kwargs,
    )


class TestEncodeDecode:
    def test_round_trip_identity(self):
        result = ExperimentResult(
            name="r",
            title="T",
            headers=["a", "b", "c"],
            rows=[(1, 2.5, "s"), (True, None, -0.0)],
            notes=("n1", "n2"),
            precision=2,
        )
        assert decode_result(encode_result(result)) == result

    def test_non_finite_floats_round_trip_through_json(self):
        result = ExperimentResult(
            name="r",
            title="T",
            headers=["a"],
            rows=[(float("inf"),), (float("-inf"),)],
        )
        payload = json.loads(json.dumps(encode_result(result)))
        assert decode_result(payload) == result

    def test_nan_tagged(self):
        from repro.campaign.artifacts import _decode_cell, _encode_cell
        import math

        tagged = _encode_cell(float("nan"))
        assert tagged == {"__float__": "nan"}
        assert math.isnan(_decode_cell(tagged))

    def test_unencodable_cell_rejected(self):
        result = ExperimentResult(
            name="r", title="T", headers=["a"], rows=[(object(),)]
        )
        with pytest.raises(ValidationError, match="not JSON-encodable"):
            encode_result(result)


class TestRunnerLayout:
    def test_artifact_folders(self, tmp_path, toy_kind):
        spec = toy_spec()
        runner = CampaignRunner(spec, tmp_path)
        payloads = runner.run()
        assert sorted(payloads) == ["cell0", "cell1", "cell2"]
        assert runner.spec_path.exists()
        assert runner.checkpoint_path.exists()
        for i in range(3):
            folder = runner.cell_dir(f"cell{i}")
            assert (folder / "result.json").exists()
            assert (folder / "metrics.json").exists()
            assert (folder / "trace.jsonl").exists()
            # result.json round-trips to exactly what run() returned.
            assert encode_result(read_cell_result(folder)) == payloads[f"cell{i}"]

    def test_cell_dir_validates_name(self, tmp_path, toy_kind):
        runner = CampaignRunner(toy_spec(), tmp_path)
        with pytest.raises(ValidationError):
            runner.cell_dir("not_a_cell")

    def test_load_spec_round_trip(self, tmp_path, toy_kind):
        spec = toy_spec()
        CampaignRunner(spec, tmp_path).run()
        assert CampaignRunner.load_spec(tmp_path) == spec

    def test_load_spec_missing_dir(self, tmp_path):
        with pytest.raises(ValidationError, match="not a campaign directory"):
            CampaignRunner.load_spec(tmp_path / "nope")

    def test_mismatched_spec_refused(self, tmp_path, toy_kind):
        CampaignRunner(toy_spec(), tmp_path).run()
        other = toy_spec(seed=99)
        with pytest.raises(ValidationError, match="different campaign"):
            CampaignRunner(other, tmp_path).run()


class TestKillAndResume:
    def test_crash_then_resume_is_byte_identical(self, tmp_path, toy_kind):
        spec = toy_spec(4)

        ref = CampaignRunner(spec, tmp_path / "ref")
        ref_doc = build_report(spec, ref.run())

        broken = CampaignRunner(
            spec, tmp_path / "int", fault_plan=FaultPlan.parse("crash@2")
        )
        with pytest.raises(InstanceExecutionError):
            broken.run()
        statuses = [s["status"] for s in broken.status()]
        assert statuses == ["done", "done", "pending", "pending"]

        resumed = CampaignRunner(spec, tmp_path / "int")
        doc = build_report(spec, resumed.run())
        assert report_json(doc) == report_json(ref_doc)
        assert render_report(doc) == render_report(ref_doc)
        for i in range(4):
            a = (tmp_path / "ref" / "cells" / f"cell{i}" / "result.json").read_bytes()
            b = (tmp_path / "int" / "cells" / f"cell{i}" / "result.json").read_bytes()
            assert a == b

    def test_resume_does_not_rerun_completed_cells(self, tmp_path, toy_kind):
        spec = toy_spec(3)
        runner = CampaignRunner(spec, tmp_path)
        runner.run()
        assert len(toy_kind) == 3
        # A full re-run replays every cell from the checkpoint.
        again = CampaignRunner(spec, tmp_path)
        payloads = again.run()
        assert len(toy_kind) == 3  # no additional executions
        assert sorted(payloads) == ["cell0", "cell1", "cell2"]

    def test_status_and_payloads_before_any_run(self, tmp_path, toy_kind):
        runner = CampaignRunner(toy_spec(), tmp_path)
        assert all(s["status"] == "pending" for s in runner.status())
        assert runner.payloads() == {}


class TestBudgetTenants:
    def test_each_cell_charges_its_own_tenant(self, tmp_path, toy_kind):
        spec = CampaignSpec(
            name="tenants",
            cells=(
                CellSpec(name="a", kind="toy_test_kind"),
                CellSpec(name="b", kind="toy_test_kind", tenant="shared"),
                CellSpec(name="c", kind="toy_test_kind", tenant="shared"),
            ),
        )
        with use_budget_store(InMemoryBudgetStore(limit=100.0)):
            CampaignRunner(spec, tmp_path).run()
        assert toy_kind == ["a", "shared", "shared"]

    def test_without_store_tenant_still_set(self, tmp_path, toy_kind):
        CampaignRunner(toy_spec(1), tmp_path).run()
        assert toy_kind == ["cell0"]


class TestSmokePresetIntegration:
    def test_smoke_campaign_cells_match_standalone_runs(self, tmp_path):
        """An 'experiment' campaign cell reproduces the standalone run."""
        from repro.campaign import build_preset
        from repro.cli import run_experiment

        spec = build_preset("smoke")
        runner = CampaignRunner(spec, tmp_path)
        payloads = runner.run()
        standalone = run_experiment("table1", fast=True, seed=0)
        assert payloads["table1"] == encode_result(standalone)
