"""Unit tests for repro.mechanisms.price_set."""

import numpy as np
import pytest

from repro.auction.bids import Bid, BidProfile
from repro.auction.instance import AuctionInstance
from repro.exceptions import EmptyPriceSetError
from repro.mechanisms.price_set import feasible_price_set, group_prices_by_candidates


class TestFeasiblePriceSet:
    def test_toy_instance_feasible_tail(self, toy_instance):
        # Price 1 affords only worker 0 (task 1 uncovered) — infeasible.
        prices = feasible_price_set(toy_instance)
        assert prices.tolist() == [2.0, 3.0]

    def test_everything_feasible(self):
        bids = BidProfile([Bid([0], 1.0)])
        inst = AuctionInstance(
            bids=bids,
            quality=np.array([[0.9]]),
            demands=np.array([0.5]),
            price_grid=np.array([1.0, 2.0]),
            c_min=1.0,
            c_max=2.0,
        )
        assert feasible_price_set(inst).tolist() == [1.0, 2.0]

    def test_nothing_feasible_raises(self):
        bids = BidProfile([Bid([0], 1.0)])
        inst = AuctionInstance(
            bids=bids,
            quality=np.array([[0.1]]),
            demands=np.array([5.0]),
            price_grid=np.array([1.0, 2.0]),
            c_min=1.0,
            c_max=2.0,
        )
        with pytest.raises(EmptyPriceSetError):
            feasible_price_set(inst)

    def test_grid_price_below_all_bids_infeasible(self):
        bids = BidProfile([Bid([0], 5.0)])
        inst = AuctionInstance(
            bids=bids,
            quality=np.array([[0.9]]),
            demands=np.array([0.5]),
            price_grid=np.array([1.0, 5.0]),
            c_min=1.0,
            c_max=5.0,
        )
        assert feasible_price_set(inst).tolist() == [5.0]

    def test_grid_price_equal_to_bid_includes_worker(self):
        # Exact equality at the threshold must count (ρ_i <= p).
        bids = BidProfile([Bid([0], 2.0)])
        inst = AuctionInstance(
            bids=bids,
            quality=np.array([[0.9]]),
            demands=np.array([0.5]),
            price_grid=np.array([2.0, 3.0]),
            c_min=1.0,
            c_max=3.0,
        )
        assert feasible_price_set(inst)[0] == 2.0

    def test_monotone_tail_structure(self, tiny_setting):
        from repro.workloads.generator import generate_instance

        instance, _ = generate_instance(tiny_setting, seed=0)
        prices = feasible_price_set(instance)
        # The feasible set is always a suffix of the grid.
        grid = instance.price_grid
        start = grid.size - prices.size
        assert np.allclose(grid[start:], prices)


class TestGroupPrices:
    def test_toy_groups(self, toy_instance):
        prices = feasible_price_set(toy_instance)
        groups = group_prices_by_candidates(toy_instance, prices)
        assert len(groups) == 2
        # Price 2 affords workers {0, 1}; price 3 affords all.
        assert groups[0].candidates.tolist() == [0, 1]
        assert groups[1].candidates.tolist() == [0, 1, 2]
        assert groups[0].price_indices.tolist() == [0]
        assert groups[1].price_indices.tolist() == [1]

    def test_partition_covers_all_prices(self, tiny_setting):
        from repro.workloads.generator import generate_instance

        instance, _ = generate_instance(tiny_setting, seed=1)
        prices = feasible_price_set(instance)
        groups = group_prices_by_candidates(instance, prices)
        seen = np.concatenate([g.price_indices for g in groups])
        assert sorted(seen.tolist()) == list(range(prices.size))

    def test_candidate_sets_grow_monotonically(self, tiny_setting):
        from repro.workloads.generator import generate_instance

        instance, _ = generate_instance(tiny_setting, seed=2)
        prices = feasible_price_set(instance)
        groups = group_prices_by_candidates(instance, prices)
        for earlier, later in zip(groups, groups[1:]):
            assert set(earlier.candidates) < set(later.candidates)

    def test_group_problem_rows_match_candidates(self, toy_instance):
        prices = feasible_price_set(toy_instance)
        group = group_prices_by_candidates(toy_instance, prices)[0]
        expected = toy_instance.effective_quality[group.candidates]
        assert np.array_equal(group.problem.gains, expected)

    def test_candidates_are_exactly_affordable_workers(self, tiny_setting):
        from repro.workloads.generator import generate_instance

        instance, _ = generate_instance(tiny_setting, seed=3)
        prices = feasible_price_set(instance)
        for group in group_prices_by_candidates(instance, prices):
            group_price = float(prices[group.price_indices[0]])
            expected = np.flatnonzero(instance.prices <= group_price + 1e-9)
            assert group.candidates.tolist() == expected.tolist()
