"""Deterministic chaos tests: fault plans, injection, retry, quarantine.

The contract under test (docs/RESILIENCE.md): a seeded
:class:`~repro.resilience.FaultPlan` injects the same failures every
run; :class:`~repro.bench.BatchAuctionRunner` completes the batch
anyway, quarantining exactly the plan's permanent indices and retrying
transient ones with their original seeds — so every non-faulted *and*
every recovered instance is bit-identical to a fault-free run, on the
serial and process backends alike.
"""

import pickle

import numpy as np
import pytest

from repro import DPHSRCAuction
from repro.bench import BatchAuctionRunner, seeded_auction_batch
from repro.exceptions import InstanceExecutionError, TransientError, ValidationError
from repro.obs import MetricsRecorder
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    FaultyMechanism,
    PoisonedResultError,
    ResilienceConfig,
    RetryPolicy,
    SimulatedCrashError,
    SimulatedTimeoutError,
    TransientFaultError,
    ensure_outcome_sane,
    use_resilience,
)

#: One fault of every kind; timeout@3 needs 5 failing attempts but the
#: retry budget below allows only 2, so it exhausts and quarantines,
#: while transient@5 recovers on its first retry.
MATRIX_PLAN = "crash@1,timeout@3:5,transient@5:1,poison@6"
MATRIX_RETRY = RetryPolicy(max_retries=2, base_delay=0.0, max_delay=0.0)
MATRIX_QUARANTINED = (1, 3, 6)

N_INSTANCES = 8
MECHANISM = DPHSRCAuction(epsilon=1.0)


def _batch():
    return seeded_auction_batch(N_INSTANCES, n_workers=25, n_tasks=5, seed=0)


def _clean_run():
    return BatchAuctionRunner(MECHANISM, backend="serial").run(_batch(), seed=42)


class TestFaultSpec:
    def test_defaults_by_kind(self):
        """Transient kinds default to one failing attempt, permanent to all."""
        assert FaultSpec("transient", 0).attempts == 1
        assert FaultSpec("timeout", 0).attempts == 1
        assert FaultSpec("crash", 0).attempts is None
        assert FaultSpec("poison", 0).attempts is None

    def test_fails_at_window(self):
        spec = FaultSpec("transient", 4, attempts=2)
        assert spec.fails_at(0) and spec.fails_at(1)
        assert not spec.fails_at(2)
        assert FaultSpec("crash", 0).fails_at(10**6)

    @pytest.mark.parametrize(
        "kind,exc",
        [
            ("crash", SimulatedCrashError),
            ("timeout", SimulatedTimeoutError),
            ("transient", TransientFaultError),
            ("poison", PoisonedResultError),
        ],
    )
    def test_build_error_types(self, kind, exc):
        assert isinstance(FaultSpec(kind, 0).build_error(), exc)

    def test_transient_kinds_are_retryable_exceptions(self):
        """The retry loop keys off TransientError, so the taxonomy must agree."""
        assert isinstance(FaultSpec("timeout", 0).build_error(), TransientError)
        assert isinstance(FaultSpec("transient", 0).build_error(), TransientError)
        assert not isinstance(FaultSpec("crash", 0).build_error(), TransientError)
        assert not isinstance(FaultSpec("poison", 0).build_error(), TransientError)

    @pytest.mark.parametrize("bad", [("bogus", 0, None), ("crash", -1, None), ("crash", 0, 0)])
    def test_validation(self, bad):
        kind, index, attempts = bad
        with pytest.raises(ValidationError):
            FaultSpec(kind, index, attempts)


class TestFaultPlan:
    def test_parse_round_trip(self):
        plan = FaultPlan.parse(MATRIX_PLAN)
        assert plan.indices == (1, 3, 5, 6)
        assert plan.spec_for(3).attempts == 5
        assert FaultPlan.parse(plan.spec_string()) == plan

    def test_parse_rejects_malformed(self):
        for text in ("crash", "crash@x", "crash@1:y", "nope@1"):
            with pytest.raises(ValidationError):
                FaultPlan.parse(text)

    def test_one_fault_per_index(self):
        with pytest.raises(ValidationError):
            FaultPlan.parse("crash@1,poison@1")

    def test_permanent_indices_respect_retry_budget(self):
        plan = FaultPlan.parse(MATRIX_PLAN)
        assert plan.permanent_indices(max_retries=2) == MATRIX_QUARANTINED
        assert plan.permanent_indices(max_retries=5) == (1, 6)
        assert plan.permanent_indices(max_retries=0) == (1, 3, 5, 6)

    def test_sample_is_seed_deterministic(self):
        a = FaultPlan.sample(50, 0.3, seed=np.random.SeedSequence(9))
        b = FaultPlan.sample(50, 0.3, seed=np.random.SeedSequence(9))
        c = FaultPlan.sample(50, 0.3, seed=np.random.SeedSequence(10))
        assert a == b
        assert a != c
        assert 0 < len(a.specs) < 50

    def test_plan_pickles(self):
        """Plans cross the process-pool boundary."""
        plan = FaultPlan.parse(MATRIX_PLAN)
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestPoisonDetection:
    def test_corrupt_then_sane_check_rejects(self):
        outcome = _clean_run().outcomes[0]
        plan = FaultPlan.parse("poison@0")
        poisoned = plan.corrupt(outcome, 0)
        assert np.all(poisoned.payments < 0)
        with pytest.raises(PoisonedResultError):
            ensure_outcome_sane(poisoned)

    def test_clean_outcome_passes(self):
        outcome = _clean_run().outcomes[0]
        assert ensure_outcome_sane(outcome) is outcome

    def test_corrupt_leaves_other_indices_alone(self):
        outcome = _clean_run().outcomes[0]
        plan = FaultPlan.parse("poison@3")
        assert plan.corrupt(outcome, 0) is outcome


class TestFaultyMechanism:
    def test_faults_exactly_the_planned_call(self):
        instance = _batch()[0]
        faulty = FaultyMechanism(DPHSRCAuction(epsilon=1.0), FaultPlan.parse("transient@1"))
        first = faulty.run(instance, np.random.default_rng(3))
        with pytest.raises(TransientFaultError):
            faulty.run(instance, np.random.default_rng(3))
        third = faulty.run(instance, np.random.default_rng(3))
        bare = DPHSRCAuction(epsilon=1.0).run(instance, np.random.default_rng(3))
        assert first.price == third.price == bare.price
        assert np.array_equal(first.payments, bare.payments)


class TestBatchFaultMatrix:
    """The ISSUE's fault matrix: each kind, serial and process backends."""

    def _run(self, backend, **kwargs):
        runner = BatchAuctionRunner(
            MECHANISM,
            backend=backend,
            max_workers=2 if backend == "process" else None,
            fault_plan=FaultPlan.parse(MATRIX_PLAN),
            retry=MATRIX_RETRY,
            **kwargs,
        )
        recorder = MetricsRecorder()
        return runner.run(_batch(), seed=42, recorder=recorder), recorder

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_matrix(self, backend):
        clean = _clean_run()
        result, recorder = self._run(backend)
        # The batch completed and quarantined exactly the plan's
        # permanently failing indices, preserving input positions.
        assert result.n_instances == N_INSTANCES
        assert tuple(f.index for f in result.failed) == MATRIX_QUARANTINED
        for failure in result.failed:
            assert isinstance(failure, InstanceExecutionError)
            assert result.outcomes[failure.index] is None
        assert np.all(np.isnan(result.prices()[list(MATRIX_QUARANTINED)]))
        # Every non-quarantined instance — including transient@5, which
        # recovered via retry — is bit-identical to the fault-free run.
        for i in range(N_INSTANCES):
            if i in MATRIX_QUARANTINED:
                continue
            assert result.outcomes[i].price == clean.outcomes[i].price
            assert np.array_equal(result.outcomes[i].payments, clean.outcomes[i].payments)
            assert np.array_equal(result.outcomes[i].winners, clean.outcomes[i].winners)
        # Resilience events are recorded: timeout@3 burns its 2 retries
        # and transient@5 one; failures = 3 (timeout) + 1 (transient)
        # + 1 (crash) + 1 (poison).
        assert recorder.counters["resilience.retries"] == 3
        assert recorder.counters["resilience.failures"] == 6
        assert recorder.counters["resilience.recovered"] == 1
        assert recorder.counters["resilience.quarantined"] == 3

    def test_backends_agree_on_metrics(self):
        """Quarantine/retry accounting is backend-invariant."""
        _, serial_rec = self._run("serial")
        _, process_rec = self._run("process")
        assert serial_rec.counters == process_rec.counters
        assert serial_rec.ledger.entries == process_rec.ledger.entries

    def test_on_error_raise(self):
        with pytest.raises(InstanceExecutionError) as info:
            self._run("serial", on_error="raise")
        assert info.value.index == 1
        assert isinstance(info.value.cause, SimulatedCrashError)

    def test_cause_types_per_kind(self):
        result, _ = self._run("serial")
        causes = {f.index: type(f.cause) for f in result.failed}
        assert causes == {
            1: SimulatedCrashError,
            3: SimulatedTimeoutError,
            6: PoisonedResultError,
        }
        assert {f.index: f.attempts for f in result.failed} == {1: 1, 3: 3, 6: 1}


class TestAmbientConfig:
    def test_runner_picks_up_ambient_plan(self):
        """CLI flags reach the runner through use_resilience, no plumbing."""
        config = ResilienceConfig(
            retry=MATRIX_RETRY, fault_plan=FaultPlan.parse("transient@0:1")
        )
        runner = BatchAuctionRunner(MECHANISM, backend="serial")
        with use_resilience(config):
            result = runner.run(_batch(), seed=42)
        assert result.failed == ()
        clean = _clean_run()
        assert result.outcomes[0].price == clean.outcomes[0].price

    def test_explicit_arguments_win_over_ambient(self):
        config = ResilienceConfig(fault_plan=FaultPlan.parse("crash@0"))
        runner = BatchAuctionRunner(
            MECHANISM, backend="serial", fault_plan=FaultPlan.parse("crash@2")
        )
        with use_resilience(config):
            result = runner.run(_batch(), seed=42)
        assert tuple(f.index for f in result.failed) == (2,)

    def test_fault_free_runs_unchanged_by_default(self):
        """With resilience off, results match the pre-resilience contract."""
        result = _clean_run()
        assert result.failed == ()
        assert result.n_failed == 0
        assert not np.any(np.isnan(result.prices()))
