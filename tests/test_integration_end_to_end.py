"""Integration tests: the full system working together.

These exercise the complete paper pipeline — workload generation →
auction → sensing → aggregation → audits — and the cross-module
consistency claims the unit tests cannot see.
"""

import numpy as np
import pytest

from repro import (
    BaselineAuction,
    DPHSRCAuction,
    Platform,
    TaskSet,
    optimal_total_payment,
    theorem6_payment_bound,
)
from repro.analysis import (
    dp_audit,
    exact_payment_stats,
    rationality_audit,
    sampled_payment_stats,
    truthfulness_audit,
)
from repro.workloads.generator import generate_instance, generate_worker_population


class TestFullPaperPipeline:
    """One instance, every claim the paper makes about it."""

    @pytest.fixture(scope="class")
    def market(self, request):
        from repro.workloads.settings import SimulationSetting

        setting = SimulationSetting(
            name="integration",
            epsilon=0.5,
            c_min=1.0,
            c_max=10.0,
            bundle_size=(3, 5),
            skill_range=(0.3, 0.95),
            error_threshold_range=(0.3, 0.5),
            n_workers=30,
            n_tasks=6,
            price_range=(4.0, 10.0),
            grid_step=0.5,
        )
        instance, pool = generate_instance(setting, seed=42)
        return setting, instance, pool

    def test_payment_ordering_optimal_dp_baseline(self, market):
        """R_OPT ≤ E[R_dp-hsrc]; E[R_dp-hsrc] ≲ E[R_baseline] (Figures 1–2)."""
        setting, instance, _ = market
        opt = optimal_total_payment(instance).total_payment
        dp = DPHSRCAuction(setting.epsilon).expected_total_payment(instance)
        base = BaselineAuction(setting.epsilon).expected_total_payment(instance)
        assert opt <= dp + 1e-9
        assert dp <= base * 1.05

    def test_theorem6_envelope(self, market):
        setting, instance, _ = market
        dp = DPHSRCAuction(setting.epsilon).expected_total_payment(instance)
        r_opt = optimal_total_payment(instance).total_payment
        bound = theorem6_payment_bound(
            instance, setting.epsilon, r_opt, unit=setting.grid_step
        )
        assert dp <= bound

    def test_all_three_audits_pass(self, market):
        setting, instance, pool = market
        auction = DPHSRCAuction(setting.epsilon)
        pmf = auction.price_pmf(instance)

        assert rationality_audit(pmf, instance).satisfied
        assert dp_audit(
            auction, instance, setting, setting.epsilon, n_neighbors=3, seed=0
        ).satisfied
        worker = int(np.argmin(pool.costs))
        assert truthfulness_audit(
            auction, instance, worker, float(pool.costs[worker]),
            setting.epsilon, seed=1,
        ).satisfied

    def test_sampled_statistics_match_exact(self, market):
        setting, instance, _ = market
        pmf = DPHSRCAuction(setting.epsilon).price_pmf(instance)
        sampled = sampled_payment_stats(pmf, n_samples=50_000, seed=2)
        exact = exact_payment_stats(pmf)
        assert sampled.mean == pytest.approx(exact.mean, rel=0.02)

    def test_sensing_round_meets_announced_bounds(self, market):
        setting, instance, pool = market
        tasks = TaskSet(
            true_labels=np.random.default_rng(3).choice((-1, 1), pool.n_tasks),
            error_thresholds=np.exp(-instance.demands / 2.0),
        )
        platform = Platform(DPHSRCAuction(setting.epsilon))
        report = platform.run_round(pool, tasks, instance, seed=4)
        assert bool(np.all(report.demand_met))
        assert np.all(report.error_bounds <= tasks.error_thresholds + 1e-9)


class TestScaleSmoke:
    """Setting-III-scale smoke test: the big-market path stays fast."""

    def test_setting_iii_point_runs(self):
        from repro.workloads.settings import SETTING_III

        instance, _pool = generate_instance(SETTING_III, seed=0, n_workers=800)
        pmf = DPHSRCAuction(epsilon=0.1).price_pmf(instance)
        base = BaselineAuction(epsilon=0.1).price_pmf(instance)
        assert pmf.support_size > 0
        assert pmf.expected_total_payment() <= base.expected_total_payment() * 1.05


class TestExamplesRun:
    """Every example script must execute cleanly (they are documentation)."""

    @pytest.mark.parametrize(
        "script",
        ["quickstart.py", "pothole_patrol.py", "privacy_audit.py",
         "longitudinal_campaign.py", "strategic_worker.py",
         "campaign_planner.py"],
    )
    def test_example_script(self, script, capsys):
        import runpy
        from pathlib import Path

        path = Path(__file__).resolve().parents[1] / "examples" / script
        runpy.run_path(str(path), run_name="__main__")
        out = capsys.readouterr().out
        assert len(out) > 100  # produced a real report
        assert "VIOLATION" not in out
