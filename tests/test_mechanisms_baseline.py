"""Unit tests for repro.mechanisms.baseline."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mechanisms.baseline import BaselineAuction
from repro.mechanisms.dp_hsrc import DPHSRCAuction
from repro.workloads.generator import generate_instance


class TestConstruction:
    def test_bad_epsilon_rejected(self):
        with pytest.raises(ValidationError):
            BaselineAuction(epsilon=-1.0)

    def test_name(self):
        assert BaselineAuction(0.1).name == "baseline"


class TestPricePMF:
    def test_support_matches_dp_hsrc(self, tiny_setting):
        """Both mechanisms share the feasible price set; only winners differ."""
        instance, _ = generate_instance(tiny_setting, seed=0)
        base = BaselineAuction(epsilon=0.5).price_pmf(instance)
        dp = DPHSRCAuction(epsilon=0.5).price_pmf(instance)
        assert np.allclose(base.prices, dp.prices)

    def test_every_support_outcome_is_feasible(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=1)
        pmf = BaselineAuction(epsilon=0.5).price_pmf(instance)
        for k in range(pmf.support_size):
            coverage = instance.effective_quality[pmf.winner_sets[k]].sum(axis=0)
            assert np.all(coverage >= instance.demands - 1e-9)

    def test_winners_always_affordable(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=2)
        pmf = BaselineAuction(epsilon=0.5).price_pmf(instance)
        for k in range(pmf.support_size):
            asked = instance.prices[pmf.winner_sets[k]]
            assert np.all(asked <= pmf.prices[k] + 1e-9)

    def test_winners_follow_static_quality_order(self, toy_instance):
        pmf = BaselineAuction(epsilon=0.5).price_pmf(toy_instance)
        # At price 3: worker 2 has static gain 1.28 (two tasks), workers 0/1
        # have 0.64.  Worker 2 alone covers both demands.
        last = pmf.winner_sets[-1]
        assert last.tolist() == [2]

    @pytest.mark.parametrize("seed", range(4))
    def test_dp_hsrc_never_pays_more_in_expectation(self, tiny_setting, seed):
        """The paper's headline comparison on small random markets."""
        instance, _ = generate_instance(tiny_setting, seed=seed)
        dp = DPHSRCAuction(epsilon=0.5).expected_total_payment(instance)
        base = BaselineAuction(epsilon=0.5).expected_total_payment(instance)
        # Adaptive greedy dominates the static rule per price, so the
        # payment comparison holds instance-wise up to exp-mech weighting;
        # allow a small tolerance for weighting effects.
        assert dp <= base * 1.05

    def test_is_epsilon_dp_too(self, tiny_setting):
        """§VII-A: the baseline inherits the DP guarantee."""
        from repro.privacy.leakage import pmf_max_log_ratio
        from repro.workloads.generator import matched_neighbor

        epsilon = 0.5
        instance, _ = generate_instance(tiny_setting, seed=3)
        auction = BaselineAuction(epsilon=epsilon)
        base = auction.price_pmf(instance)
        rng = np.random.default_rng(1)
        for _ in range(3):
            worker = int(rng.integers(instance.n_workers))
            neighbor = matched_neighbor(instance, tiny_setting, worker, seed=rng)
            assert pmf_max_log_ratio(base, auction.price_pmf(neighbor)) <= epsilon + 1e-9
