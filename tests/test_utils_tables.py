"""Unit tests for repro.utils.tables and repro.utils.timer."""

import pytest

from repro.utils.tables import format_value, render_table
from repro.utils.timer import Timer


class TestFormatValue:
    def test_float_precision(self):
        assert format_value(3.14159, precision=2) == "3.14"

    def test_int_passthrough(self):
        assert format_value(42) == "42"

    def test_string_passthrough(self):
        assert format_value("abc") == "abc"

    def test_none_and_bool(self):
        assert format_value(None) == "None"
        assert format_value(True) == "True"


class TestRenderTable:
    def test_alignment_and_header(self):
        text = render_table(["a", "bb"], [(1, 2.5), (10, 3.25)], precision=2)
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert "a" in lines[0] and "bb" in lines[0]
        assert "2.50" in lines[2]

    def test_title_prepended(self):
        text = render_table(["x"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [(1,)])

    def test_empty_rows_ok(self):
        text = render_table(["a"], [])
        assert "a" in text

    def test_columns_right_justified(self):
        text = render_table(["col"], [(1,), (100,)])
        rows = text.splitlines()[2:]
        assert rows[0].endswith("1")
        assert rows[1].endswith("100")


class TestTimer:
    def test_measures_nonnegative(self):
        with Timer() as t:
            sum(range(100))
        assert t.elapsed >= 0.0

    def test_elapsed_zero_before_use(self):
        assert Timer().elapsed == 0.0
