"""Unit tests for the multi-tenant budget accounts (repro.privacy.budget)."""

import pickle

import pytest

from repro.exceptions import BudgetExceededError
from repro.obs.ledger import LedgerEntry
from repro.privacy.budget import (
    NULL_BUDGET_STORE,
    BudgetAccount,
    InMemoryBudgetStore,
)


class TestBudgetAccountComposition:
    def test_sequential_charges_add(self):
        store = InMemoryBudgetStore()
        store.charge("t", "p", mechanism="m", epsilon=0.3)
        total = store.charge("t", "p", mechanism="m", epsilon=0.2)
        assert total == pytest.approx(0.5)
        assert store.spent("t", "p") == pytest.approx(0.5)

    def test_parallel_charges_take_the_max(self):
        store = InMemoryBudgetStore()
        store.charge("t", "p", mechanism="m", epsilon=0.3, parallel=True)
        total = store.charge("t", "p", mechanism="m", epsilon=0.2, parallel=True)
        assert total == pytest.approx(0.3)

    def test_mixed_composition_is_sum_plus_max(self):
        store = InMemoryBudgetStore()
        store.charge("t", "p", mechanism="m", epsilon=0.1)
        store.charge("t", "p", mechanism="m", epsilon=0.4, parallel=True)
        store.charge("t", "p", mechanism="m", epsilon=0.2)
        store.charge("t", "p", mechanism="m", epsilon=0.3, parallel=True)
        assert store.spent("t", "p") == pytest.approx(0.1 + 0.2 + 0.4)

    def test_to_accountant_parity(self):
        """An account replayed into a PrivacyAccountant agrees exactly."""
        store = InMemoryBudgetStore(limit=10.0)
        store.charge("t", "p", mechanism="m", epsilon=0.125)
        store.charge("t", "p", mechanism="m", epsilon=0.25, parallel=True)
        store.charge("t", "p", mechanism="m", epsilon=0.0625)
        acct = store.account("t", "p")
        assert acct.to_accountant().spent == acct.spent

    def test_accounts_are_keyed_by_tenant_and_principal(self):
        store = InMemoryBudgetStore()
        store.charge("a", "x", mechanism="m", epsilon=0.1)
        store.charge("a", "y", mechanism="m", epsilon=0.2)
        store.charge("b", "x", mechanism="m", epsilon=0.4)
        assert len(store) == 3
        assert store.spent("a", "x") == pytest.approx(0.1)
        assert store.spent("a", "y") == pytest.approx(0.2)
        assert store.spent("b", "x") == pytest.approx(0.4)
        assert [(a.tenant, a.principal) for a in store.accounts()] == [
            ("a", "x"), ("a", "y"), ("b", "x"),
        ]

    def test_epsilon_must_be_positive(self):
        store = InMemoryBudgetStore()
        with pytest.raises(ValueError):
            store.charge("t", "p", mechanism="m", epsilon=0.0)


class TestLimits:
    def test_charge_past_limit_raises_with_typed_fields(self):
        store = InMemoryBudgetStore(limit=0.5)
        store.charge("acme", "workers", mechanism="dp-hsrc", epsilon=0.4)
        with pytest.raises(BudgetExceededError) as info:
            store.charge("acme", "workers", mechanism="dp-hsrc", epsilon=0.4)
        err = info.value
        assert err.tenant == "acme"
        assert err.principal == "workers"
        assert err.mechanism == "dp-hsrc"
        assert "'acme'" in str(err) and "'dp-hsrc'" in str(err)
        # The violating charge is retained — an audit must show it.
        assert store.spent("acme", "workers") == pytest.approx(0.8)

    def test_typed_fields_survive_pickling(self):
        """Process-pool transit must not lose the tenant/mechanism."""
        err = BudgetExceededError("boom", tenant="t", principal="p", mechanism="m")
        clone = pickle.loads(pickle.dumps(err))
        assert (clone.tenant, clone.principal, clone.mechanism) == ("t", "p", "m")

    def test_exact_limit_is_allowed(self):
        store = InMemoryBudgetStore(limit=0.5)
        store.charge("t", "p", mechanism="m", epsilon=0.25)
        assert store.charge("t", "p", mechanism="m", epsilon=0.25) == pytest.approx(0.5)

    def test_per_tenant_limit_overrides_default(self):
        store = InMemoryBudgetStore(limit=0.1, limits={"vip": 5.0, "free": None})
        store.charge("vip", "p", mechanism="m", epsilon=1.0)
        store.charge("free", "p", mechanism="m", epsilon=1.0)
        with pytest.raises(BudgetExceededError):
            store.charge("other", "p", mechanism="m", epsilon=1.0)
        assert store.limit_for("vip") == 5.0
        assert store.limit_for("free") is None
        assert store.limit_for("other") == 0.1

    def test_remaining_clamps_at_zero(self):
        store = InMemoryBudgetStore(limit=0.5)
        store.charge("t", "p", mechanism="m", epsilon=0.5)
        assert store.remaining("t", "p") == 0.0
        assert store.remaining("unknown", "p") == 0.5  # a fresh account's limit

    def test_degraded_charges_never_raise_and_are_separate(self):
        store = InMemoryBudgetStore(limit=0.1)
        store.charge("t", "p", mechanism="m", epsilon=0.1)
        for _ in range(3):
            store.charge("t", "p", mechanism="baseline", epsilon=0.1, degraded=True)
        acct = store.account("t", "p")
        assert acct.spent == pytest.approx(0.1)
        assert acct.degraded_epsilon == pytest.approx(0.3)
        assert acct.n_degraded == 3
        assert acct.n_charges == 1


class TestRenewAndMerge:
    def test_renew_resets_enforced_spend_only(self):
        store = InMemoryBudgetStore(limit=0.5)
        store.charge("t", "p", mechanism="m", epsilon=0.5)
        store.charge("t", "p", mechanism="m", epsilon=0.1, degraded=True)
        store.renew("t", "p", epoch=3)
        acct = store.account("t", "p")
        assert acct.spent == 0.0
        assert acct.degraded_epsilon == pytest.approx(0.1)  # audit history kept
        assert acct.n_renewals == 1
        assert acct.epoch == 3
        # Budget is fresh again.
        assert store.charge("t", "p", mechanism="m", epsilon=0.5) == pytest.approx(0.5)

    def test_merge_snapshot_reproduces_serial_composition(self):
        serial = InMemoryBudgetStore()
        part_a = InMemoryBudgetStore()
        part_b = InMemoryBudgetStore()
        for target in (serial, part_a):
            target.charge("t", "p", mechanism="m", epsilon=0.125)
            target.charge("t", "p", mechanism="m", epsilon=0.5, parallel=True)
        for target in (serial, part_b):
            target.charge("t", "p", mechanism="m", epsilon=0.0625)
            target.charge("t", "p", mechanism="m", epsilon=0.25, parallel=True)
            target.charge("u", "p", mechanism="m", epsilon=0.75, degraded=True)
        merged = InMemoryBudgetStore()
        merged.merge_snapshot(part_a.snapshot())
        merged.merge_snapshot(part_b.snapshot())
        assert merged.snapshot() == serial.snapshot()

    def test_snapshot_round_trips_through_pickle(self):
        store = InMemoryBudgetStore(limit=1.0)
        store.charge("t", "p", mechanism="m", epsilon=0.3)
        snap = pickle.loads(pickle.dumps(store.snapshot()))
        clone = InMemoryBudgetStore(limit=1.0)
        clone.merge_snapshot(snap)
        assert clone.spent("t", "p") == store.spent("t", "p")


class TestNullStore:
    def test_null_store_tracks_nothing(self):
        assert NULL_BUDGET_STORE.tracking is False
        assert NULL_BUDGET_STORE.charge("t", "p", mechanism="m", epsilon=9.0) == 0.0
        assert list(NULL_BUDGET_STORE.accounts()) == []
        assert NULL_BUDGET_STORE.remaining("t") is None

    def test_default_account_fields(self):
        acct = BudgetAccount(tenant="t", principal="p")
        assert acct.spent == 0.0
        assert acct.remaining is None


class TestLedgerEntryValidation:
    """Satellite: LedgerEntry.composition is validated at construction."""

    def test_known_compositions_pass(self):
        for rule in ("sequential", "parallel"):
            LedgerEntry(mechanism="m", epsilon=0.1, sensitivity=1.0, composition=rule)

    def test_unknown_composition_raises_with_context(self):
        with pytest.raises(ValueError, match="'bogus'.*'dp-hsrc'"):
            LedgerEntry(
                mechanism="dp-hsrc", epsilon=0.1, sensitivity=1.0, composition="bogus"
            )
