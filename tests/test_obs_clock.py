"""Tests for repro.obs.clock and repro.obs.encoding."""

import json

import numpy as np
import pytest

from repro.obs import (
    MONOTONIC_CLOCK,
    FakeClock,
    MetricsRecorder,
    MonotonicClock,
    current_clock,
    dumps_json,
    use_clock,
)
from repro.utils import Timer


class TestClock:
    def test_default_is_the_monotonic_singleton(self):
        assert current_clock() is MONOTONIC_CLOCK
        assert isinstance(MONOTONIC_CLOCK, MonotonicClock)

    def test_monotonic_clock_advances(self):
        clock = MonotonicClock()
        assert clock.now() <= clock.now()

    def test_fake_clock_advances_only_on_demand(self):
        clock = FakeClock(start=10.0)
        assert clock.now() == 10.0
        assert clock.now() == 10.0
        clock.advance(2.5)
        assert clock.now() == 12.5

    def test_fake_clock_rejects_negative_advance(self):
        with pytest.raises(ValueError):
            FakeClock().advance(-1.0)

    def test_use_clock_installs_and_restores(self):
        fake = FakeClock()
        with use_clock(fake) as active:
            assert active is fake
            assert current_clock() is fake
        assert current_clock() is MONOTONIC_CLOCK

    def test_spans_read_the_ambient_clock(self):
        fake = FakeClock(start=100.0)
        with use_clock(fake):
            rec = MetricsRecorder()
            with rec.span("sample"):
                fake.advance(0.25)
            with rec.span("exp_mech"):
                fake.advance(1.5)
        assert rec.spans[0].seconds == 0.25
        assert rec.spans[1].seconds == 1.5
        # Start offsets are relative to the recorder's construction.
        assert rec.spans[0].start == 0.0
        assert rec.spans[1].start == 0.25

    def test_timer_reads_the_ambient_clock(self):
        fake = FakeClock()
        with use_clock(fake):
            with Timer() as t:
                fake.advance(3.0)
        assert t.elapsed == 3.0

    def test_recorder_binds_clock_at_construction(self):
        fake = FakeClock()
        with use_clock(fake):
            rec = MetricsRecorder()
        # The recorder keeps the clock it was built under even after the
        # scope exits — per-unit recorders in pool workers depend on it.
        with rec.span("sample"):
            fake.advance(0.5)
        assert rec.spans[0].seconds == 0.5


class TestEncoding:
    def test_keys_are_sorted(self):
        assert dumps_json({"b": 1, "a": 2}) == '{"a": 2, "b": 1}'

    def test_numpy_scalars_coerce_via_item(self):
        payload = dumps_json({"x": np.float64(1.5), "n": np.int64(7)})
        assert json.loads(payload) == {"x": 1.5, "n": 7}

    def test_unencodable_objects_raise(self):
        with pytest.raises(TypeError):
            dumps_json({"x": object()})

    def test_recorder_reexport_is_the_same_function(self):
        from repro.obs.encoding import dumps_json as canonical
        from repro.obs.recorder import dumps_json as reexported

        assert reexported is canonical
