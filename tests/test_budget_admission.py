"""Admission-control tests: refuse, degrade, and renewal schedules."""

import pytest

from repro.exceptions import BudgetExceededError
from repro.privacy.budget import (
    AdmissionController,
    InMemoryBudgetStore,
    RenewalSchedule,
    current_budget_scope,
    use_budget_store,
)


def _spend(store, amount, tenant="t", principal="p"):
    store.charge(tenant, principal, mechanism="m", epsilon=amount)


class TestRefusePolicy:
    def test_affordable_draw_is_allowed(self):
        store = InMemoryBudgetStore(limit=1.0)
        control = AdmissionController(store)
        decision = control.admit("t", "p", mechanism="m", epsilon=0.5)
        assert decision.allowed and not decision.degrade
        assert decision.remaining == 1.0

    def test_unaffordable_draw_raises_before_spending(self):
        store = InMemoryBudgetStore(limit=1.0)
        control = AdmissionController(store)
        _spend(store, 0.8)
        with pytest.raises(BudgetExceededError, match="admission refused") as info:
            control.admit("t", "p", mechanism="dp-hsrc", epsilon=0.5)
        assert info.value.tenant == "t"
        assert info.value.mechanism == "dp-hsrc"
        # Pre-flight refusal spends nothing.
        assert store.spent("t", "p") == pytest.approx(0.8)

    def test_unlimited_account_always_admits(self):
        store = InMemoryBudgetStore()
        control = AdmissionController(store)
        _spend(store, 100.0)
        assert control.admit("t", "p", mechanism="m", epsilon=50.0).allowed

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="on_exhausted"):
            AdmissionController(InMemoryBudgetStore(), on_exhausted="explode")


class TestDegradePolicy:
    def test_exhausted_account_degrades_instead_of_raising(self):
        store = InMemoryBudgetStore(limit=1.0)
        control = AdmissionController(store, on_exhausted="degrade")
        _spend(store, 0.8)
        decision = control.admit("t", "p", mechanism="m", epsilon=0.5)
        assert decision.degrade and not decision.allowed
        assert decision.remaining == pytest.approx(0.2)

    def test_other_tenants_unaffected(self):
        store = InMemoryBudgetStore(limit=1.0)
        control = AdmissionController(store, on_exhausted="degrade")
        _spend(store, 1.0, tenant="poor")
        assert control.admit("poor", "p", mechanism="m", epsilon=0.5).degrade
        assert control.admit("rich", "p", mechanism="m", epsilon=0.5).allowed


class TestRenewalSchedules:
    def test_schedule_requires_a_trigger(self):
        with pytest.raises(ValueError, match="every_charges"):
            RenewalSchedule()
        with pytest.raises(ValueError):
            RenewalSchedule(every_charges=0)

    def test_renew_by_charge_count(self):
        store = InMemoryBudgetStore(limit=1.0)
        control = AdmissionController(
            store, renewal=RenewalSchedule(every_charges=2)
        )
        _spend(store, 0.5)
        _spend(store, 0.5)
        decision = control.admit("t", "p", mechanism="m", epsilon=0.5)
        assert decision.renewed and decision.allowed
        assert store.spent("t", "p") == 0.0
        assert store.account("t", "p").n_renewals == 1

    def test_renew_by_logical_clock_epoch(self):
        store = InMemoryBudgetStore(limit=1.0)
        control = AdmissionController(
            store, renewal=RenewalSchedule(epoch_length=10)
        )
        _spend(store, 1.0)
        # Same epoch: no renewal, so the refuse policy fires.
        with pytest.raises(BudgetExceededError):
            control.admit("t", "p", mechanism="m", epsilon=0.5)
        control.advance_clock(10)
        decision = control.admit("t", "p", mechanism="m", epsilon=0.5)
        assert decision.renewed and decision.allowed
        assert store.account("t", "p").epoch == 1

    def test_epoch_renewal_fires_once_per_epoch(self):
        store = InMemoryBudgetStore(limit=1.0)
        control = AdmissionController(store, renewal=RenewalSchedule(epoch_length=5))
        _spend(store, 0.25)
        control.advance_clock(5)
        assert control.admit("t", "p", mechanism="m", epsilon=0.1).renewed
        assert not control.admit("t", "p", mechanism="m", epsilon=0.1).renewed
        assert store.account("t", "p").n_renewals == 1


class TestBudgetScope:
    def test_default_scope_is_inactive(self):
        scope = current_budget_scope()
        assert not scope.active
        # Inactive scopes still answer admit() — always allowed.
        assert scope.admit(mechanism="m", epsilon=9.9).allowed

    def test_use_budget_store_installs_and_restores(self):
        store = InMemoryBudgetStore(limit=1.0)
        with use_budget_store(store, tenant="acme", principal="eu") as scope:
            assert current_budget_scope() is scope
            assert scope.active
            scope.charge(mechanism="m", epsilon=0.5)
        assert not current_budget_scope().active
        assert store.spent("acme", "eu") == pytest.approx(0.5)

    def test_with_tenant_repoints_the_account(self):
        store = InMemoryBudgetStore()
        with use_budget_store(store, tenant="a") as scope:
            other = scope.with_tenant("b", "workers")
            other.charge(mechanism="m", epsilon=0.25)
        assert store.spent("b", "workers") == pytest.approx(0.25)
        assert store.spent("a") == 0.0

    def test_scope_admission_uses_the_scopes_account(self):
        store = InMemoryBudgetStore(limit=0.5)
        _spend(store, 0.5, tenant="poor", principal="default")
        with use_budget_store(store, tenant="poor", on_exhausted="degrade") as scope:
            assert scope.admit(mechanism="m", epsilon=0.5).degrade
            assert scope.with_tenant("rich").admit(mechanism="m", epsilon=0.5).allowed
