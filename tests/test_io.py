"""Unit tests for repro.io (JSON serialization round-trips)."""

import json

import numpy as np
import pytest

from repro import io as repro_io
from repro.auction.outcome import AuctionOutcome
from repro.exceptions import ValidationError
from repro.workloads.generator import generate_instance


class TestInstanceRoundTrip:
    def test_bitwise_round_trip(self, tiny_setting, tmp_path):
        instance, _pool = generate_instance(tiny_setting, seed=0)
        path = repro_io.save(instance, tmp_path / "inst.json")
        restored = repro_io.load(path)
        assert np.array_equal(restored.quality, instance.quality)
        assert np.array_equal(restored.demands, instance.demands)
        assert np.array_equal(restored.price_grid, instance.price_grid)
        assert restored.bids == instance.bids
        assert (restored.c_min, restored.c_max) == (instance.c_min, instance.c_max)

    def test_restored_instance_gives_identical_pmf(self, tiny_setting, tmp_path):
        """The ultimate check: the mechanism cannot tell the difference."""
        from repro.mechanisms.dp_hsrc import DPHSRCAuction

        instance, _pool = generate_instance(tiny_setting, seed=1)
        restored = repro_io.load(repro_io.save(instance, tmp_path / "i.json"))
        a = DPHSRCAuction(epsilon=0.5).price_pmf(instance)
        b = DPHSRCAuction(epsilon=0.5).price_pmf(restored)
        assert np.array_equal(a.probabilities, b.probabilities)
        assert np.array_equal(a.prices, b.prices)


class TestPoolRoundTrip:
    def test_round_trip(self, tiny_setting, tmp_path):
        from repro.workloads.generator import generate_worker_population

        pool = generate_worker_population(tiny_setting, seed=2)
        restored = repro_io.load(repro_io.save(pool, tmp_path / "pool.json"))
        assert np.array_equal(restored.skills, pool.skills)
        assert restored.bundles == pool.bundles
        assert np.array_equal(restored.costs, pool.costs)


class TestOutcomeRoundTrip:
    def test_round_trip(self, tmp_path):
        outcome = AuctionOutcome(winners=[0, 3], price=7.5, n_workers=5)
        restored = repro_io.load(repro_io.save(outcome, tmp_path / "o.json"))
        assert np.array_equal(restored.winners, outcome.winners)
        assert restored.price == outcome.price
        assert np.array_equal(restored.payments, outcome.payments)

    def test_differentiated_payments_survive(self, tmp_path):
        outcome = AuctionOutcome(
            winners=[0, 1],
            price=9.0,
            n_workers=3,
            payments=np.array([4.5, 9.0, 0.0]),
        )
        restored = repro_io.load(repro_io.save(outcome, tmp_path / "o.json"))
        assert restored.payments.tolist() == [4.5, 9.0, 0.0]


class TestErrors:
    def test_unsupported_type_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="cannot serialize"):
            repro_io.save({"not": "supported"}, tmp_path / "x.json")

    def test_non_artifact_file_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValidationError, match="artifact"):
            repro_io.load(path)

    def test_unknown_type_tag_rejected(self, tmp_path):
        path = tmp_path / "weird.json"
        path.write_text(json.dumps({"type": "martian", "version": 1}))
        with pytest.raises(ValidationError, match="unknown artifact"):
            repro_io.load(path)

    def test_wrong_version_rejected(self, tmp_path):
        from repro.io import instance_to_dict
        from repro.workloads.generator import generate_instance as gen

        payload = {"type": "worker_pool", "version": 99}
        with pytest.raises(ValidationError, match="version"):
            repro_io.pool_from_dict(payload)

    def test_cross_type_decode_rejected(self, tiny_setting):
        from repro.workloads.generator import generate_worker_population

        pool = generate_worker_population(tiny_setting, seed=0)
        payload = repro_io.pool_to_dict(pool)
        with pytest.raises(ValidationError, match="expected"):
            repro_io.instance_from_dict(payload)


class TestPMFRoundTrip:
    def test_round_trip_preserves_distribution(self, tiny_setting, tmp_path):
        from repro.mechanisms.dp_hsrc import DPHSRCAuction

        instance, _pool = generate_instance(tiny_setting, seed=3)
        pmf = DPHSRCAuction(epsilon=0.5).price_pmf(instance)
        restored = repro_io.load(repro_io.save(pmf, tmp_path / "pmf.json"))
        assert np.allclose(restored.prices, pmf.prices)
        assert np.allclose(restored.probabilities, pmf.probabilities)
        assert all(
            np.array_equal(a, b)
            for a, b in zip(restored.winner_sets, pmf.winner_sets)
        )
        assert restored.expected_total_payment() == pytest.approx(
            pmf.expected_total_payment()
        )

    def test_restored_pmf_samples_identically(self, tiny_setting, tmp_path):
        from repro.mechanisms.dp_hsrc import DPHSRCAuction

        instance, _pool = generate_instance(tiny_setting, seed=4)
        pmf = DPHSRCAuction(epsilon=0.5).price_pmf(instance)
        restored = repro_io.load(repro_io.save(pmf, tmp_path / "pmf.json"))
        assert restored.sample_outcome(seed=9).price == pmf.sample_outcome(seed=9).price
