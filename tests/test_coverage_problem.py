"""Unit tests for repro.coverage.problem."""

import numpy as np
import pytest

from repro.coverage.problem import CoverProblem
from repro.exceptions import ValidationError


def simple_problem():
    # 3 items, 2 constraints.
    gains = np.array([[1.0, 0.0], [0.0, 1.0], [0.6, 0.6]])
    demands = np.array([1.0, 1.0])
    return CoverProblem(gains=gains, demands=demands)


class TestConstruction:
    def test_shapes(self):
        p = simple_problem()
        assert p.n_items == 3
        assert p.n_constraints == 2

    def test_column_mismatch(self):
        with pytest.raises(ValidationError, match="columns"):
            CoverProblem(gains=np.ones((2, 3)), demands=np.ones(2))

    def test_negative_gain_rejected(self):
        with pytest.raises(ValidationError, match="non-negative"):
            CoverProblem(gains=np.array([[-0.1]]), demands=np.array([1.0]))

    def test_negative_demand_rejected(self):
        with pytest.raises(ValidationError, match="non-negative"):
            CoverProblem(gains=np.array([[0.5]]), demands=np.array([-1.0]))

    def test_arrays_readonly(self):
        p = simple_problem()
        with pytest.raises(ValueError):
            p.gains[0, 0] = 2.0


class TestQueries:
    def test_coverage(self):
        p = simple_problem()
        assert p.coverage([0, 2]).tolist() == [1.6, 0.6]

    def test_coverage_empty_selection(self):
        assert simple_problem().coverage([]).tolist() == [0.0, 0.0]

    def test_residual_clipped_at_zero(self):
        p = simple_problem()
        res = p.residual([0, 1, 2])
        assert np.all(res == 0.0)

    def test_residual_partial(self):
        p = simple_problem()
        assert p.residual([2]).tolist() == [pytest.approx(0.4), pytest.approx(0.4)]

    def test_is_feasible(self):
        p = simple_problem()
        assert p.is_feasible([0, 1])
        assert not p.is_feasible([2])

    def test_is_coverable(self):
        assert simple_problem().is_coverable()
        p = CoverProblem(gains=np.array([[0.1]]), demands=np.array([1.0]))
        assert not p.is_coverable()

    def test_active_constraints(self):
        p = CoverProblem(
            gains=np.ones((1, 3)), demands=np.array([0.0, 1.0, 0.0])
        )
        assert p.active_constraints.tolist() == [1]

    def test_restrict(self):
        p = simple_problem()
        sub, mapping = p.restrict([2, 0])
        assert sub.n_items == 2
        assert mapping.tolist() == [2, 0]
        assert sub.gains[0].tolist() == [0.6, 0.6]

    def test_index_out_of_range(self):
        with pytest.raises(ValidationError, match="out of range"):
            simple_problem().coverage([5])
