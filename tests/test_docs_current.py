"""Documentation freshness checks.

docs/API.md is generated from docstrings; this test regenerates it in a
temp location and fails when the committed copy is stale, so public-API
changes cannot silently rot the reference.
"""

import runpy
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]


class TestAPIDocsFresh:
    def test_api_md_matches_generator(self, tmp_path, monkeypatch):
        committed = (REPO / "docs" / "API.md").read_text()

        # Re-run the generator for real and compare against the pre-read
        # copy (the generator is deterministic).  It calls sys.exit() when
        # run as __main__, which is fine — 0 means success.
        with pytest.raises(SystemExit) as excinfo:
            runpy.run_path(
                str(REPO / "scripts" / "gen_api_docs.py"), run_name="__main__"
            )
        assert excinfo.value.code == 0
        regenerated = (REPO / "docs" / "API.md").read_text()
        assert regenerated == committed, (
            "docs/API.md is stale; run `python scripts/gen_api_docs.py`"
        )

    def test_api_md_mentions_headline_classes(self):
        text = (REPO / "docs" / "API.md").read_text()
        for name in ("DPHSRCAuction", "PricePMF", "plan_campaign", "covering_lp_simplex"):
            assert name in text


class TestExperimentsDocFresh:
    def test_experiments_md_matches_registry(self):
        """EXPERIMENTS.md must be regenerated after registry edits.

        The builder renders sections from repro.experiments.REGISTRY, so
        comparing its output against the committed file catches both
        stale commentary and missing/renamed sections.
        """
        committed = (REPO / "EXPERIMENTS.md").read_text(encoding="utf-8")
        module = runpy.run_path(str(REPO / "scripts" / "build_experiments_md.py"))
        assert module["build_text"]() == committed, (
            "EXPERIMENTS.md is stale; run `python scripts/build_experiments_md.py`"
        )

    def test_every_registry_experiment_has_a_section(self):
        from repro.experiments import REGISTRY

        text = (REPO / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for spec in REGISTRY:
            assert f"## {spec.artifact}" in text


class TestDesignDocCrossReferences:
    """DESIGN.md must reference only modules that actually exist."""

    def test_experiment_registry_documented(self):
        from repro.experiments import EXPERIMENTS

        design = (REPO / "DESIGN.md").read_text()
        # Every paper artifact experiment must appear in DESIGN.md.
        for name in ("figure1", "figure2", "figure3", "figure4", "figure5",
                     "table2"):
            assert name in design
        # And the registry must expose them all.
        for name in ("figure1", "table2", "price_of_privacy", "geo_workload"):
            assert name in EXPERIMENTS

    def test_theory_doc_references_real_tests(self):
        theory = (REPO / "docs" / "THEORY.md").read_text()
        for line in theory.splitlines():
            if "tests/" in line:
                for token in line.split("`"):
                    if token.startswith("tests/") and token.endswith(".py"):
                        assert (REPO / token).exists(), f"THEORY.md references missing {token}"


class TestUsageGuideReferences:
    """USAGE.md recipes must reference real public names."""

    def test_backtick_identifiers_resolve(self):
        import re

        import repro
        import repro.analysis
        import repro.io
        import repro.mechanisms

        text = (REPO / "docs" / "USAGE.md").read_text()
        known = set(repro.__all__) | set(repro.analysis.__all__) | set(
            repro.mechanisms.__all__
        ) | {"Mechanism", "AuctionOutcome", "PrivacyAccountant", "MCSSimulation"}
        for match in re.findall(r"`([A-Z][A-Za-z]+)`", text):
            assert match in known, f"USAGE.md mentions unknown class {match!r}"

    def test_first_recipe_runs(self):
        """The hand-built market recipe must execute as written."""
        import numpy as np

        from repro import AuctionInstance, Bid, BidProfile
        from repro.analysis import diagnose

        bids = BidProfile([
            Bid(bundle={0, 1}, price=12.0),
            Bid(bundle={1, 2}, price=9.5),
            Bid(bundle={0, 2}, price=15.0),
        ])
        instance = AuctionInstance.from_skills(
            bids=bids,
            skills=np.array([[0.9, 0.8, 0.5],
                             [0.7, 0.75, 0.85],
                             [0.6, 0.5, 0.95]]),
            error_thresholds=[0.2, 0.2, 0.25],
            price_grid=np.arange(8.0, 20.5, 0.5),
            c_min=5.0, c_max=20.0,
        )
        report = diagnose(instance)
        assert "coverable" in report.summary()
