"""Determinism regression: batched == serial for BatchAuctionRunner.

The runner's contract is that the master seed alone fixes every outcome:
neither the backend (serial vs process pool) nor the worker count nor
pickling round-trips may change a single price or winner set.  These
tests pin that contract, plus the order-free seed spawning it rests on.
"""

import numpy as np
import pytest

from repro.bench import (
    BENCH_SETTING,
    BatchAuctionRunner,
    BatchRunResult,
    seeded_auction_batch,
    seeded_cover_problem,
)
from repro.coverage.greedy import greedy_cover
from repro.mechanisms.baseline import BaselineAuction
from repro.mechanisms.dp_hsrc import DPHSRCAuction
from repro.utils.rng import spawn_seed_sequences


@pytest.fixture(scope="module")
def batch():
    return seeded_auction_batch(10, n_workers=30, n_tasks=6, seed=123)


def _assert_identical(a: BatchRunResult, b: BatchRunResult) -> None:
    assert a.n_instances == b.n_instances
    for left, right in zip(a.outcomes, b.outcomes):
        assert left.price == right.price
        assert np.array_equal(left.winners, right.winners)


class TestBatchedVsSerial:
    def test_process_matches_serial_across_worker_counts(self, batch):
        mechanism = DPHSRCAuction(epsilon=BENCH_SETTING.epsilon)
        serial = BatchAuctionRunner(mechanism, backend="serial").run(batch, seed=7)
        assert serial.backend == "serial"
        assert serial.max_workers == 1
        for workers in (2, 3):
            pooled = BatchAuctionRunner(
                mechanism, backend="process", max_workers=workers
            ).run(batch, seed=7)
            assert pooled.backend == "process"
            assert pooled.max_workers == workers
            _assert_identical(serial, pooled)

    def test_holds_for_the_baseline_mechanism_too(self, batch):
        mechanism = BaselineAuction(epsilon=BENCH_SETTING.epsilon)
        serial = BatchAuctionRunner(mechanism, backend="serial").run(batch, seed=11)
        pooled = BatchAuctionRunner(mechanism, backend="process", max_workers=2).run(
            batch, seed=11
        )
        _assert_identical(serial, pooled)

    def test_same_seed_reproduces_different_seed_differs(self, batch):
        runner = BatchAuctionRunner(
            DPHSRCAuction(epsilon=BENCH_SETTING.epsilon), backend="serial"
        )
        first = runner.run(batch, seed=1)
        second = runner.run(batch, seed=1)
        _assert_identical(first, second)
        other = runner.run(batch, seed=2)
        # With a 10-instance batch at ε=0.5, at least one drawn price
        # must move under a different master seed.
        assert any(
            a.price != b.price for a, b in zip(first.outcomes, other.outcomes)
        )

    def test_results_are_input_ordered_and_summarized(self, batch):
        result = BatchAuctionRunner(
            DPHSRCAuction(epsilon=BENCH_SETTING.epsilon), backend="serial"
        ).run(batch, seed=3)
        assert result.n_instances == len(batch)
        assert result.prices().shape == (len(batch),)
        assert result.total_payment == pytest.approx(
            sum(o.total_payment for o in result.outcomes)
        )
        assert result.wall_time > 0.0


class TestBackendResolution:
    def test_auto_small_batch_stays_serial(self, batch):
        runner = BatchAuctionRunner(
            DPHSRCAuction(epsilon=0.5), backend="auto", process_threshold=10_000
        )
        result = runner.run(batch[:3], seed=0)
        assert result.backend == "serial"

    def test_rejects_unknown_backend_and_bad_workers(self):
        with pytest.raises(ValueError):
            BatchAuctionRunner(DPHSRCAuction(epsilon=0.5), backend="threads")
        with pytest.raises(ValueError):
            BatchAuctionRunner(DPHSRCAuction(epsilon=0.5), max_workers=0)

    def test_empty_batch(self):
        result = BatchAuctionRunner(
            DPHSRCAuction(epsilon=0.5), backend="serial"
        ).run([], seed=0)
        assert result.n_instances == 0
        assert result.total_payment == 0.0


class TestSeedSpawning:
    def test_children_are_position_stable(self):
        # Child i depends only on (master, i): a longer batch under the
        # same master reuses the same prefix of streams.
        short = spawn_seed_sequences(99, 3)
        long = spawn_seed_sequences(99, 8)
        for a, b in zip(short, long):
            assert a.spawn_key == b.spawn_key
            draw_a = np.random.default_rng(a).random(4)
            draw_b = np.random.default_rng(b).random(4)
            assert np.array_equal(draw_a, draw_b)

    def test_accepts_seed_sequence_master(self):
        master = np.random.SeedSequence(5)
        children = spawn_seed_sequences(master, 2)
        assert len(children) == 2

    def test_rejects_generator_masters(self):
        # Generator.spawn depends on consumption state, which would make
        # "same seed" silently irreproducible — hard error instead.
        with pytest.raises(TypeError):
            spawn_seed_sequences(np.random.default_rng(0), 2)

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            spawn_seed_sequences(0, -1)


class TestWorkloads:
    def test_seeded_cover_problem_is_reproducible_and_coverable(self):
        a = seeded_cover_problem(40, 6, seed=2016)
        b = seeded_cover_problem(40, 6, seed=2016)
        assert np.array_equal(a.gains, b.gains)
        assert np.array_equal(a.demands, b.demands)
        assert a.is_coverable()
        greedy_cover(a)  # must be solvable, not just coverable on paper

    def test_seeded_auction_batch_is_reproducible(self):
        a = seeded_auction_batch(4, n_workers=25, n_tasks=5, seed=8)
        b = seeded_auction_batch(4, n_workers=25, n_tasks=5, seed=8)
        for left, right in zip(a, b):
            assert np.array_equal(left.quality, right.quality)
            assert left.bids == right.bids
