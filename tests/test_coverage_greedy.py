"""Unit tests for repro.coverage.greedy."""

import numpy as np
import pytest

from repro.coverage.greedy import greedy_cover, static_order_cover
from repro.coverage.problem import CoverProblem
from repro.exceptions import InfeasibleError


class TestGreedyCover:
    def test_single_item_suffices(self):
        p = CoverProblem(
            gains=np.array([[0.4, 0.4], [1.0, 1.0]]), demands=np.array([1.0, 1.0])
        )
        result = greedy_cover(p)
        assert result.selection.tolist() == [1]

    def test_picks_truncated_gain_not_raw_gain(self):
        # Item 0 has huge raw gain but on an almost-satisfied constraint;
        # the truncated gain rule must prefer item 1.
        p = CoverProblem(
            gains=np.array([[10.0, 0.0], [0.2, 1.0]]),
            demands=np.array([0.1, 1.0]),
        )
        result = greedy_cover(p)
        assert result.order[0] == 1

    def test_result_is_feasible(self):
        rng = np.random.default_rng(0)
        p = CoverProblem(gains=rng.uniform(0, 1, (20, 5)), demands=np.full(5, 2.0))
        result = greedy_cover(p)
        assert p.is_feasible(result.selection)

    def test_zero_demand_selects_nothing(self):
        p = CoverProblem(gains=np.ones((3, 2)), demands=np.zeros(2))
        assert greedy_cover(p).size == 0

    def test_infeasible_raises(self):
        p = CoverProblem(gains=np.full((2, 1), 0.3), demands=np.array([1.0]))
        with pytest.raises(InfeasibleError):
            greedy_cover(p)

    def test_no_useful_item_raises(self):
        p = CoverProblem(
            gains=np.array([[1.0, 0.0]]), demands=np.array([0.5, 0.5])
        )
        with pytest.raises(InfeasibleError):
            greedy_cover(p)

    def test_order_records_selection_sequence(self):
        p = CoverProblem(
            gains=np.array([[0.5, 0.0], [0.0, 0.5], [0.4, 0.4]]),
            demands=np.array([0.5, 0.5]),
        )
        result = greedy_cover(p)
        assert set(result.order) == set(result.selection.tolist())
        assert len(result.order) == result.size

    def test_never_selects_item_twice(self):
        rng = np.random.default_rng(1)
        p = CoverProblem(gains=rng.uniform(0, 0.5, (30, 8)), demands=np.full(8, 2.0))
        result = greedy_cover(p)
        assert len(set(result.order)) == len(result.order)

    def test_exact_demand_boundary(self):
        # Item exactly meets the demand; no infeasibility from float dust.
        p = CoverProblem(gains=np.array([[0.7]]), demands=np.array([0.7]))
        assert greedy_cover(p).size == 1


class TestStaticOrderCover:
    def test_default_order_is_descending_static_gain(self):
        p = CoverProblem(
            gains=np.array([[0.2, 0.2], [0.9, 0.9], [0.5, 0.5]]),
            demands=np.array([1.0, 1.0]),
        )
        result = static_order_cover(p)
        assert result.order[0] == 1  # biggest static gain first
        assert p.is_feasible(result.selection)

    def test_explicit_order_respected(self):
        p = CoverProblem(
            gains=np.array([[1.0, 1.0], [1.0, 1.0]]), demands=np.array([1.0, 1.0])
        )
        result = static_order_cover(p, order=[1, 0])
        assert result.selection.tolist() == [1]

    def test_stops_as_soon_as_feasible(self):
        p = CoverProblem(
            gains=np.array([[1.0], [1.0], [1.0]]), demands=np.array([1.0])
        )
        assert static_order_cover(p).size == 1

    def test_infeasible_raises(self):
        p = CoverProblem(gains=np.full((2, 1), 0.2), demands=np.array([1.0]))
        with pytest.raises(InfeasibleError):
            static_order_cover(p)

    def test_static_never_beats_adaptive_on_truncation_trap(self):
        # A high raw-gain item wastes capacity on a satisfied constraint;
        # the static rule takes it first and pays with a bigger cover.
        gains = np.array(
            [
                [5.0, 0.05],
                [0.0, 0.5],
                [0.0, 0.5],
            ]
        )
        p = CoverProblem(gains=gains, demands=np.array([0.5, 1.0]))
        adaptive = greedy_cover(p).size
        static = static_order_cover(p).size
        assert adaptive <= static


class TestLazyGreedyEquivalence:
    """The lazy (CELF) implementation must match the eager textbook rule."""

    @staticmethod
    def _eager_reference(problem):
        residual = problem.demands.copy()
        gains = problem.gains
        order = []
        available = np.ones(problem.n_items, dtype=bool)
        while True:
            active = residual > 1e-9
            if not np.any(active):
                break
            truncated = np.minimum(gains[:, active], residual[active])
            scores = truncated.sum(axis=1)
            scores[~available] = -np.inf
            best = int(np.argmax(scores))
            if scores[best] <= 1e-9:
                raise InfeasibleError("reference: no useful item")
            order.append(best)
            available[best] = False
            residual[active] -= truncated[best]
            np.clip(residual, 0, None, out=residual)
        return order

    @pytest.mark.parametrize("seed", range(20))
    def test_matches_eager_selection_size(self, seed):
        rng = np.random.default_rng(seed)
        n, k = int(rng.integers(3, 25)), int(rng.integers(1, 6))
        gains = rng.uniform(0, 1, (n, k))
        gains[rng.random((n, k)) < 0.4] = 0.0
        demands = gains.sum(axis=0) * float(rng.uniform(0.1, 0.8))
        problem = CoverProblem(gains=gains, demands=demands)
        eager_order = self._eager_reference(problem)
        lazy = greedy_cover(problem)
        # Tie-breaking may legitimately differ; size and feasibility not.
        assert lazy.size == len(eager_order)
        assert problem.is_feasible(lazy.selection)

    def test_prefix_matches_until_first_exact_tie(self):
        """Divergence from the eager rule may only happen at exact ties."""
        rng = np.random.default_rng(99)
        gains = rng.uniform(0.1, 1, (15, 4)) * np.pi / 3
        demands = gains.sum(axis=0) * 0.5
        problem = CoverProblem(gains=gains, demands=demands)
        eager_order = self._eager_reference(problem)
        lazy_order = list(greedy_cover(problem).order)
        assert len(eager_order) == len(lazy_order)

        # Replay the eager run; at the first divergence the two chosen
        # items must have *exactly* equal truncated gains.
        residual = problem.demands.copy()
        for step, (a, b) in enumerate(zip(eager_order, lazy_order)):
            active = residual > 1e-9
            if a != b:
                gain_a = np.minimum(problem.gains[a, active], residual[active]).sum()
                gain_b = np.minimum(problem.gains[b, active], residual[active]).sum()
                assert gain_a == gain_b
                break
            residual[active] -= np.minimum(
                problem.gains[a, active], residual[active]
            )
