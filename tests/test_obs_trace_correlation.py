"""Cross-process trace correlation: batch runs stamp one reconstructable
timeline into every unit recorder, identically on every backend."""

import pytest

from repro.bench import BatchAuctionRunner, seeded_auction_batch
from repro.mechanisms.dp_hsrc import DPHSRCAuction
from repro.obs import MetricsRecorder, render_trace_report


@pytest.fixture(scope="module")
def batch():
    return seeded_auction_batch(4, n_workers=25, n_tasks=5, seed=0)


def _run(batch, *, backend, transport="pickle", seed=7):
    rec = MetricsRecorder()
    result = BatchAuctionRunner(
        DPHSRCAuction(epsilon=0.5),
        backend=backend,
        max_workers=2,
        transport=transport,
    ).run(batch, seed=seed, recorder=rec)
    return result, rec


class TestTraceId:
    def test_deterministic_and_backend_invariant(self, batch):
        serial, _ = _run(batch, backend="serial")
        pooled, _ = _run(batch, backend="process")
        shm, _ = _run(batch, backend="process", transport="shared_memory")
        assert serial.trace_id
        assert serial.trace_id == pooled.trace_id == shm.trace_id
        again, _ = _run(batch, backend="serial")
        assert again.trace_id == serial.trace_id

    def test_different_seed_different_trace(self, batch):
        a, _ = _run(batch, backend="serial", seed=7)
        b, _ = _run(batch, backend="serial", seed=8)
        assert a.trace_id != b.trace_id

    def test_no_recorder_no_trace(self, batch):
        result = BatchAuctionRunner(
            DPHSRCAuction(epsilon=0.5), backend="serial"
        ).run(batch, seed=7)
        assert result.trace_id is None
        assert result.metrics is None
        with pytest.raises(ValueError, match="recorder"):
            result.render_openmetrics()


class TestSpanStamping:
    def test_every_unit_span_carries_the_context(self, batch):
        result, rec = _run(batch, backend="process")
        units = set()
        for event in rec.spans:
            if event.kind == "batch":
                assert event.attrs["trace_id"] == result.trace_id
                assert event.attrs["span_id"] == f"{result.trace_id}:batch"
                continue
            assert event.attrs["trace_id"] == result.trace_id
            assert event.attrs["parent_span"] == f"{result.trace_id}:batch"
            units.add(event.attrs["unit"])
        assert units == {0, 1, 2, 3}

    def test_spans_carry_start_offsets(self, batch):
        _, rec = _run(batch, backend="serial")
        starts = [e.start for e in rec.spans if e.kind != "batch"]
        assert all(isinstance(s, float) and s >= 0.0 for s in starts)

    def test_merged_snapshots_identical_across_backends(self, batch):
        import json

        serial, rec_s = _run(batch, backend="serial")
        pooled, rec_p = _run(batch, backend="process")

        def unit_spans(rec):
            return [
                e.to_json_obj()["attrs"] for e in rec.spans if e.kind != "batch"
            ]

        assert unit_spans(rec_s) == unit_spans(rec_p)
        keys = ("counters", "histograms", "ledger")
        assert json.dumps(
            {k: serial.metrics[k] for k in keys}, sort_keys=True
        ) == json.dumps({k: pooled.metrics[k] for k in keys}, sort_keys=True)


class TestTimelineRendering:
    def test_report_renders_a_gantt(self, batch):
        result, rec = _run(batch, backend="serial")
        report = rec.report()
        assert "Span timeline" in report
        assert f"{result.trace_id[:8]}/u0" in report
        assert "per-unit clocks" in report

    def test_trace_file_round_trips_through_the_offline_report(self, batch, tmp_path):
        from repro.obs import read_trace, validate_trace_file

        result, rec = _run(batch, backend="process")
        path = rec.write_trace(tmp_path / "batch.jsonl")
        validate_trace_file(path)
        report = render_trace_report(read_trace(path))
        assert "Span timeline" in report
        assert f"{result.trace_id[:8]}/u3" in report

    def test_result_metrics_render_openmetrics(self, batch):
        result, _ = _run(batch, backend="serial")
        from repro.obs import parse_openmetrics

        families = parse_openmetrics(result.render_openmetrics())
        assert "repro_batch_instances" in families
        assert "repro_privacy_epsilon" in families
