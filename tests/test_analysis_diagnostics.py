"""Unit tests for repro.analysis.diagnostics."""

import numpy as np
import pytest

from repro.analysis.diagnostics import diagnose
from repro.auction.bids import Bid, BidProfile
from repro.auction.instance import AuctionInstance
from repro.workloads.generator import generate_instance


class TestDiagnoseToyMarkets:
    def test_healthy_generated_market(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=0)
        report = diagnose(instance)
        assert report.coverable
        assert report.healthy
        assert report.feasible_fraction > 0
        assert float(np.min(report.supply_margin)) >= 1.0 - 1e-9

    def test_monopolized_task_detected(self):
        bids = BidProfile([Bid([0], 1.0), Bid([1], 1.0), Bid([1], 2.0)])
        instance = AuctionInstance(
            bids=bids,
            quality=np.full((3, 2), 0.8),
            demands=np.array([0.5, 0.5]),
            price_grid=np.array([1.0, 2.0]),
            c_min=1.0,
            c_max=2.0,
        )
        report = diagnose(instance)
        assert report.monopolized_tasks == (0,)
        assert not report.healthy

    def test_uncoverable_market(self):
        bids = BidProfile([Bid([0], 1.0)])
        instance = AuctionInstance(
            bids=bids,
            quality=np.array([[0.1]]),
            demands=np.array([5.0]),
            price_grid=np.array([1.0]),
            c_min=1.0,
            c_max=1.0,
        )
        report = diagnose(instance)
        assert not report.coverable
        assert report.feasible_fraction == 0.0
        assert report.cheapest_feasible_price is None
        assert float(report.supply_margin[0]) < 1.0

    def test_bottlenecks_worst_first(self, toy_instance):
        report = diagnose(toy_instance, n_bottlenecks=2)
        margins = report.supply_margin
        first, second = report.bottleneck_tasks
        assert margins[first] <= margins[second]

    def test_bidder_counts(self, toy_instance):
        report = diagnose(toy_instance)
        # Workers 0 and 2 bid task 0; workers 1 and 2 bid task 1.
        assert report.bidders_per_task.tolist() == [2, 2]

    def test_zero_demand_margin_is_infinite(self):
        bids = BidProfile([Bid([0, 1], 1.0)])
        instance = AuctionInstance(
            bids=bids,
            quality=np.full((1, 2), 0.5),
            demands=np.array([0.0, 0.3]),
            price_grid=np.array([1.0]),
            c_min=1.0,
            c_max=1.0,
        )
        report = diagnose(instance)
        assert np.isinf(report.supply_margin[0])

    def test_summary_is_readable(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=1)
        text = diagnose(instance).summary()
        assert "coverable: True" in text
        assert "feasible grid fraction" in text

    def test_cheapest_feasible_matches_price_set(self, tiny_setting):
        from repro.mechanisms.price_set import feasible_price_set

        instance, _ = generate_instance(tiny_setting, seed=2)
        report = diagnose(instance)
        assert report.cheapest_feasible_price == pytest.approx(
            float(feasible_price_set(instance)[0])
        )

    def test_threshold_auction_viability_predicted(self, tiny_setting):
        """No monopolized tasks is necessary for the threshold auction.

        (Not sufficient — a worker can be irreplaceable through quality
        even with >1 bidders — but monopolies are the common case.)
        """
        from repro.exceptions import InfeasibleError
        from repro.mechanisms.threshold_auction import ThresholdPaymentAuction

        instance, _ = generate_instance(
            tiny_setting.with_population(n_workers=60), seed=3
        )
        report = diagnose(instance)
        if report.monopolized_tasks:
            with pytest.raises(InfeasibleError):
                ThresholdPaymentAuction().run(instance)
