"""Run the runnable examples embedded in docstrings.

Docstring examples are documentation that can silently rot; running them
keeps the copy-pasteable snippets honest.  Only modules whose examples
are deterministic are included.
"""

import doctest

import pytest

import repro.aggregation.error_bounds
import repro.bench.batch
import repro.campaign.runner
import repro.mechanisms.dp_hsrc
import repro.privacy.budget
import repro.privacy.budget.admission
import repro.privacy.budget.context
import repro.privacy.budget.journal
import repro.privacy.budget.store
import repro.utils.rng
import repro.utils.tables
import repro.utils.timer

MODULES = [
    repro.utils.rng,
    repro.bench.batch,
    repro.campaign.runner,
    repro.utils.timer,
    repro.utils.tables,
    repro.mechanisms.dp_hsrc,
    repro.aggregation.error_bounds,
    repro.privacy.budget,
    repro.privacy.budget.store,
    repro.privacy.budget.journal,
    repro.privacy.budget.admission,
    repro.privacy.budget.context,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"


def test_package_quickstart_doctest():
    """The quickstart in the package docstring must run as written."""
    import repro

    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
