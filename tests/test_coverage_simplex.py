"""Unit tests for repro.coverage.simplex (from-scratch LP solver)."""

import numpy as np
import pytest

from repro.coverage.lp import lp_lower_bound
from repro.coverage.problem import CoverProblem
from repro.coverage.simplex import covering_lp_simplex
from repro.exceptions import InfeasibleError


def random_problem(seed, n_items=12, n_constraints=4):
    rng = np.random.default_rng(seed)
    gains = rng.uniform(0, 1, (n_items, n_constraints))
    gains[rng.random(gains.shape) < 0.35] = 0.0
    demands = gains.sum(axis=0) * rng.uniform(0.2, 0.7)
    return CoverProblem(gains=gains, demands=demands)


class TestAgainstHiGHS:
    @pytest.mark.parametrize("seed", range(15))
    def test_objective_matches_scipy(self, seed):
        problem = random_problem(seed)
        ours = covering_lp_simplex(problem)
        highs = lp_lower_bound(problem)
        assert ours.objective == pytest.approx(highs.objective, abs=1e-6)

    @pytest.mark.parametrize("seed", range(5))
    def test_solution_is_lp_feasible(self, seed):
        problem = random_problem(seed)
        result = covering_lp_simplex(problem)
        x = result.solution
        assert np.all(x >= -1e-9) and np.all(x <= 1 + 1e-9)
        coverage = problem.gains.T @ x
        assert np.all(coverage >= problem.demands - 1e-6)


class TestExactCases:
    def test_disjoint_unit_cover(self):
        problem = CoverProblem(gains=np.eye(3), demands=np.ones(3))
        result = covering_lp_simplex(problem)
        assert result.objective == pytest.approx(3.0)
        assert np.allclose(result.solution, 1.0)

    def test_fractional_optimum(self):
        # One demand of 1 against gain 0.6 items: LP x = 1/0.6 spread.
        problem = CoverProblem(gains=np.full((3, 1), 0.6), demands=np.array([1.0]))
        result = covering_lp_simplex(problem)
        assert result.objective == pytest.approx(1.0 / 0.6)

    def test_zero_demand_zero_objective(self):
        problem = CoverProblem(gains=np.ones((2, 2)), demands=np.zeros(2))
        result = covering_lp_simplex(problem)
        assert result.objective == 0.0
        assert result.iterations == 0

    def test_infeasible_detected(self):
        problem = CoverProblem(
            gains=np.full((2, 1), 0.2), demands=np.array([1.0])
        )
        with pytest.raises(InfeasibleError, match="artificials"):
            covering_lp_simplex(problem)

    def test_binding_upper_bounds(self):
        # Demand forces every x to its upper bound of 1.
        problem = CoverProblem(
            gains=np.array([[0.5], [0.5]]), demands=np.array([1.0])
        )
        result = covering_lp_simplex(problem)
        assert result.objective == pytest.approx(2.0)
        assert np.allclose(result.solution, 1.0)

    def test_reports_iterations(self):
        problem = random_problem(0)
        assert covering_lp_simplex(problem).iterations >= 1
