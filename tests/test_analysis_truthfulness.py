"""Unit tests for repro.analysis.truthfulness (Theorem 3 audits)."""

import numpy as np
import pytest

from repro.analysis.truthfulness import price_deviations, truthfulness_audit
from repro.mechanisms.dp_hsrc import DPHSRCAuction
from repro.workloads.generator import generate_instance


class TestPriceDeviations:
    def test_within_cost_bounds(self):
        prices = price_deviations(5.0, 1.0, 10.0, seed=0)
        assert all(1.0 <= p <= 10.0 for p in prices)

    def test_excludes_true_cost(self):
        prices = price_deviations(5.0, 1.0, 10.0, n_deviations=20, seed=1)
        assert all(not np.isclose(p, 5.0) for p in prices)

    def test_count_roughly_requested(self):
        prices = price_deviations(0.0, 1.0, 10.0, n_deviations=10, seed=2)
        assert 8 <= len(prices) <= 10


class TestTruthfulnessAudit:
    @pytest.fixture
    def market(self, tiny_setting):
        instance, pool = generate_instance(tiny_setting, seed=0)
        return tiny_setting, instance, pool

    def test_gamma_holds_for_price_deviations(self, market):
        """Theorem 3 on a real market: gains never exceed γ = ε·Δc."""
        setting, instance, pool = market
        auction = DPHSRCAuction(epsilon=setting.epsilon)
        for worker in (0, 5, 12):
            report = truthfulness_audit(
                auction,
                instance,
                worker=worker,
                true_cost=float(pool.costs[worker]),
                epsilon=setting.epsilon,
                seed=1,
            )
            assert report.satisfied, (
                f"worker {worker} gains {report.max_gain} > gamma {report.gamma}"
            )

    def test_gamma_holds_for_bundle_deviations(self, market):
        setting, instance, pool = market
        auction = DPHSRCAuction(epsilon=setting.epsilon)
        worker = 3
        truthful_bundle = sorted(instance.bids[worker].bundle)
        # Misreport: drop a task / add a task.
        smaller = truthful_bundle[:-1]
        larger = sorted(set(truthful_bundle) | {0, 1})
        report = truthfulness_audit(
            auction,
            instance,
            worker=worker,
            true_cost=float(pool.costs[worker]),
            epsilon=setting.epsilon,
            deviation_prices=[],
            deviation_bundles=[smaller, larger],
            seed=2,
        )
        assert report.satisfied

    def test_report_fields(self, market):
        setting, instance, pool = market
        report = truthfulness_audit(
            DPHSRCAuction(epsilon=setting.epsilon),
            instance,
            worker=0,
            true_cost=float(pool.costs[0]),
            epsilon=setting.epsilon,
            deviation_prices=[setting.c_min, setting.c_max],
            seed=3,
        )
        assert report.worker == 0
        assert len(report.deviations) <= 2
        assert report.gamma == pytest.approx(
            setting.epsilon * (setting.c_max - setting.c_min)
        )

    def test_empty_deviations_trivially_satisfied(self, market):
        setting, instance, pool = market
        report = truthfulness_audit(
            DPHSRCAuction(epsilon=setting.epsilon),
            instance,
            worker=0,
            true_cost=float(pool.costs[0]),
            epsilon=setting.epsilon,
            deviation_prices=[],
            seed=4,
        )
        assert report.max_gain == 0.0
        assert report.satisfied

    def test_overbidding_above_grid_loses_utility(self, market):
        """A worker pricing herself out of the market gets zero utility."""
        setting, instance, pool = market
        auction = DPHSRCAuction(epsilon=setting.epsilon)
        worker = int(np.argmin(pool.costs))
        report = truthfulness_audit(
            auction,
            instance,
            worker=worker,
            true_cost=float(pool.costs[worker]),
            epsilon=setting.epsilon,
            deviation_prices=[setting.c_max],
            seed=5,
        )
        if report.deviations:  # the deviation kept the market feasible
            assert report.deviations[0].expected_utility <= report.truthful_utility + report.gamma
