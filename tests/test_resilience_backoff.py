"""Property-based tests of the deterministic backoff schedule (hypothesis).

The schedule contract (docs/RESILIENCE.md): for any valid policy and any
seed, :meth:`RetryPolicy.delays` is monotone non-decreasing, bounded by
the cap, truncated by the deadline, no longer than the retry budget, a
pure function of the injected :class:`numpy.random.SeedSequence`, and
computed without touching wall-clock time or any global RNG state.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.resilience import NO_RETRY, RetryPolicy, retry_stream


@st.composite
def policies(draw):
    base = draw(st.floats(0.0, 1.0))
    return RetryPolicy(
        max_retries=draw(st.integers(0, 8)),
        base_delay=base,
        multiplier=draw(st.floats(1.0, 4.0)),
        max_delay=base + draw(st.floats(0.0, 3.0)),
        deadline=draw(st.one_of(st.none(), st.floats(0.001, 10.0))),
        jitter=draw(st.floats(0.0, 1.0)),
    )


seeds = st.integers(0, 2**63 - 1)


class TestScheduleProperties:
    @given(policy=policies(), seed=seeds)
    @settings(max_examples=200, deadline=None)
    def test_monotone_bounded_and_budgeted(self, policy, seed):
        delays = policy.delays(seed)
        assert len(delays) <= policy.max_retries
        assert all(d >= 0.0 for d in delays)
        assert all(d <= policy.max_delay + 1e-12 for d in delays)
        assert all(a <= b for a, b in zip(delays, delays[1:]))
        if policy.deadline is not None:
            assert sum(delays) <= policy.deadline + 1e-12

    @given(policy=policies(), seed=seeds)
    @settings(max_examples=100, deadline=None)
    def test_schedule_is_a_pure_function_of_the_seed(self, policy, seed):
        a = policy.delays(np.random.SeedSequence(seed))
        b = policy.delays(np.random.SeedSequence(seed))
        assert a == b

    @given(policy=policies(), seed=seeds)
    @settings(max_examples=100, deadline=None)
    def test_no_global_rng_or_wallclock_dependence(self, policy, seed):
        """Jitter comes only from the injected SeedSequence."""
        py_state = random.getstate()
        np_state = np.random.get_state()
        first = policy.delays(seed)
        random.seed(0xBAD)
        np.random.seed(0xBAD)
        second = policy.delays(seed)
        assert first == second
        # delays() must not have consumed or reseeded the globals itself:
        random.setstate(py_state)
        np.random.set_state(np_state)
        assert policy.delays(seed) == first

    @given(seed=seeds, retries=st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_zero_jitter_is_exact_exponential(self, seed, retries):
        policy = RetryPolicy(
            max_retries=retries, base_delay=0.1, multiplier=2.0, max_delay=100.0, jitter=0.0
        )
        expected = tuple(0.1 * 2.0**k for k in range(retries))
        assert policy.delays(seed) == expected

    @given(policy=policies())
    @settings(max_examples=50, deadline=None)
    def test_distinct_unit_seeds_via_retry_stream(self, policy):
        """Sibling units draw jitter from distinct reserved streams."""
        children = np.random.SeedSequence(7).spawn(4)
        streams = [retry_stream(child) for child in children]
        assert len({s.spawn_key for s in streams}) == len(streams)
        for child, stream in zip(children, streams):
            assert stream.spawn_key[: len(child.spawn_key)] == tuple(child.spawn_key)


class TestRetryStreamIsolation:
    def test_retry_stream_never_collides_with_instance_children(self):
        """The reserved suffix cannot equal any small consecutive spawn key."""
        master = np.random.SeedSequence(42)
        children = master.spawn(1000)
        reserved = retry_stream(master).spawn_key
        assert reserved not in {child.spawn_key for child in children}

    def test_retry_stream_is_deterministic(self):
        child = np.random.SeedSequence(42).spawn(3)[1]
        a = np.random.default_rng(retry_stream(child)).random(4)
        b = np.random.default_rng(retry_stream(child)).random(4)
        assert np.array_equal(a, b)

    def test_retry_draws_differ_from_instance_draws(self):
        """Jitter never replays the randomness the instance consumes."""
        child = np.random.SeedSequence(42).spawn(3)[1]
        instance_draws = np.random.default_rng(child).random(4)
        jitter_draws = np.random.default_rng(retry_stream(child)).random(4)
        assert not np.array_equal(instance_draws, jitter_draws)


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"base_delay": -0.1},
            {"multiplier": 0.5},
            {"base_delay": 1.0, "max_delay": 0.5},
            {"deadline": 0.0},
            {"jitter": 1.5},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            RetryPolicy(**kwargs)

    def test_no_retry_is_empty(self):
        assert NO_RETRY.delays(0) == ()
        assert NO_RETRY.max_retries == 0

    def test_deadline_truncates_not_clips(self):
        """The first over-deadline delay is dropped, not shortened."""
        policy = RetryPolicy(
            max_retries=3, base_delay=0.1, multiplier=2.0, max_delay=2.0,
            deadline=0.25, jitter=0.0,
        )
        assert policy.delays(0) == (0.1,)
