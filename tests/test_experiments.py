"""Tests for the experiment harness (fast-mode runs of every experiment)."""

import numpy as np
import pytest

from repro.cli import run_experiment
from repro.experiments import EXPERIMENTS
from repro.experiments.runner import ExperimentResult


class TestRunnerResult:
    def test_to_table_and_column(self):
        result = ExperimentResult(
            name="x", title="T", headers=["a", "b"], rows=[(1, 2.0), (3, 4.0)]
        )
        text = result.to_table()
        assert "T" in text
        assert result.column("b") == [2.0, 4.0]

    def test_notes_rendered(self):
        result = ExperimentResult(
            name="x", title="T", headers=["a"], rows=[(1,)], notes=("careful",)
        )
        assert "note: careful" in result.to_table()

    def test_unknown_column(self):
        result = ExperimentResult(name="x", title="T", headers=["a"], rows=[(1,)])
        with pytest.raises(ValueError):
            result.column("zz")


class TestTable1:
    def test_matches_paper_parameters(self):
        result = run_experiment("table1", fast=True)
        assert len(result.rows) == 4
        assert [row[0] for row in result.rows] == ["I", "II", "III", "IV"]


class TestFigure5Fast:
    def test_tradeoff_shape(self):
        """Leakage must rise and payment must fall along the ε sweep."""
        result = run_experiment("figure5", fast=True)
        eps = result.column("epsilon")
        payments = result.column("avg total payment")
        leakages = result.column("mean KL leakage")
        assert eps == sorted(eps)
        # Monotone trends (weak, end-to-end).
        assert payments[-1] <= payments[0]
        assert leakages[-1] >= leakages[0]


class TestAblationsFast:
    def test_greedy_ablation_orders_rules(self):
        result = run_experiment("ablation_greedy", fast=True)
        adaptive = result.column("adaptive/opt")
        static = result.column("static/opt")
        assert all(a >= 1.0 - 1e-9 for a in adaptive)
        assert np.mean(adaptive) <= np.mean(static) + 1e-9

    def test_solver_ablation_backends_agree(self):
        result = run_experiment("ablation_solver", fast=True)
        assert all(row[2] == row[3] for row in result.rows)
        assert any("agree" in note for note in result.notes)

    def test_grid_ablation_support_grows_with_resolution(self):
        result = run_experiment("ablation_grid", fast=True)
        steps = result.column("grid step")
        supports = result.column("|P|")
        # Finer steps → larger supports.
        pairs = sorted(zip(steps, supports))
        assert all(
            s2 <= s1 for (_, s1), (_, s2) in zip(pairs, pairs[1:])
        )


class TestFigureDriversFast:
    def test_figure1_shape(self):
        result = run_experiment("figure1", fast=True)
        assert "optimal mean" in result.headers
        for row in result.rows:
            opt = row[result.headers.index("optimal mean")]
            dp = row[result.headers.index("dp_hsrc mean")]
            base = row[result.headers.index("baseline mean")]
            assert opt <= dp * 1.001
            assert dp <= base * 1.05

    def test_figure3_has_no_optimal(self):
        result = run_experiment("figure3", fast=True)
        assert "optimal mean" not in result.headers
        for row in result.rows:
            dp = row[result.headers.index("dp_hsrc mean")]
            base = row[result.headers.index("baseline mean")]
            assert dp <= base * 1.05

    def test_table2_runtime_asymmetry(self):
        result = run_experiment("table2", fast=True)
        for row in result.rows:
            dp_time = row[result.headers.index("dp_hsrc time (s)")]
            opt_time = row[result.headers.index("optimal time (s)")]
            assert dp_time < opt_time  # the paper's headline asymmetry


class TestRegistry:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("figure99")

    def test_registry_modules_all_importable(self):
        import importlib

        for name in EXPERIMENTS:
            module = importlib.import_module(f"repro.experiments.{name}")
            assert callable(module.run)
