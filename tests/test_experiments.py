"""Tests for the experiment harness (fast-mode runs of every experiment)."""

import numpy as np
import pytest

from repro.cli import run_experiment
from repro.experiments import EXPERIMENTS
from repro.experiments.runner import ExperimentResult


class TestRunnerResult:
    def test_to_table_and_column(self):
        result = ExperimentResult(
            name="x", title="T", headers=["a", "b"], rows=[(1, 2.0), (3, 4.0)]
        )
        text = result.to_table()
        assert "T" in text
        assert result.column("b") == [2.0, 4.0]

    def test_notes_rendered(self):
        result = ExperimentResult(
            name="x", title="T", headers=["a"], rows=[(1,)], notes=("careful",)
        )
        assert "note: careful" in result.to_table()

    def test_unknown_column(self):
        result = ExperimentResult(name="x", title="T", headers=["a"], rows=[(1,)])
        with pytest.raises(ValueError):
            result.column("zz")

    def test_empty_rows_render_headers_only(self):
        result = ExperimentResult(name="x", title="T", headers=["a", "b"], rows=[])
        text = result.to_table()
        lines = text.splitlines()
        # Title, header line, rule — and nothing else.
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 3
        assert result.column("a") == []

    def test_ragged_rows_rejected(self):
        result = ExperimentResult(
            name="x", title="T", headers=["a", "b"], rows=[(1, 2), (3,)]
        )
        with pytest.raises(ValueError, match="1 cells .* 2 headers"):
            result.to_table()

    def test_wide_row_rejected(self):
        result = ExperimentResult(
            name="x", title="T", headers=["a"], rows=[(1, 2)]
        )
        with pytest.raises(ValueError, match="2 cells .* 1 headers"):
            result.to_table()

    def test_non_string_cells_format(self):
        """bool/None/numpy/non-finite cells all render deterministically."""
        result = ExperimentResult(
            name="x",
            title="T",
            headers=["a", "b", "c", "d", "e"],
            rows=[
                (True, None, np.int64(7), float("inf"), float("nan")),
                (False, "s", np.float64(1.5), -float("inf"), 0.125),
            ],
            precision=2,
        )
        text = result.to_table()
        assert "True" in text and "None" in text and "7" in text
        assert "inf" in text and "nan" in text
        # numpy floats obey the precision like python floats.
        assert "1.50" in text and "0.12" in text

    def test_precision_respected(self):
        result = ExperimentResult(
            name="x", title="T", headers=["a"], rows=[(1.23456,)], precision=1
        )
        assert "1.2" in result.to_table()
        assert "1.23" not in result.to_table()


class TestTable1:
    def test_matches_paper_parameters(self, experiment_cache):
        result = experiment_cache("table1")
        assert len(result.rows) == 4
        assert [row[0] for row in result.rows] == ["I", "II", "III", "IV"]


class TestFigure5Fast:
    def test_tradeoff_shape(self, experiment_cache):
        """Leakage must rise and payment must fall along the ε sweep."""
        result = experiment_cache("figure5")
        eps = result.column("epsilon")
        payments = result.column("avg total payment")
        leakages = result.column("mean KL leakage")
        assert eps == sorted(eps)
        # Monotone trends (weak, end-to-end).
        assert payments[-1] <= payments[0]
        assert leakages[-1] >= leakages[0]


class TestAblationsFast:
    def test_greedy_ablation_orders_rules(self, experiment_cache):
        result = experiment_cache("ablation_greedy")
        adaptive = result.column("adaptive/opt")
        static = result.column("static/opt")
        assert all(a >= 1.0 - 1e-9 for a in adaptive)
        assert np.mean(adaptive) <= np.mean(static) + 1e-9

    def test_solver_ablation_backends_agree(self, experiment_cache):
        result = experiment_cache("ablation_solver")
        assert all(row[2] == row[3] for row in result.rows)
        assert any("agree" in note for note in result.notes)

    def test_grid_ablation_support_grows_with_resolution(self, experiment_cache):
        result = experiment_cache("ablation_grid")
        steps = result.column("grid step")
        supports = result.column("|P|")
        # Finer steps → larger supports.
        pairs = sorted(zip(steps, supports))
        assert all(
            s2 <= s1 for (_, s1), (_, s2) in zip(pairs, pairs[1:])
        )


class TestFigureDriversFast:
    def test_figure1_shape(self, experiment_cache):
        result = experiment_cache("figure1")
        assert "optimal mean" in result.headers
        for row in result.rows:
            opt = row[result.headers.index("optimal mean")]
            dp = row[result.headers.index("dp_hsrc mean")]
            base = row[result.headers.index("baseline mean")]
            assert opt <= dp * 1.001
            assert dp <= base * 1.05

    def test_figure3_has_no_optimal(self, experiment_cache):
        result = experiment_cache("figure3")
        assert "optimal mean" not in result.headers
        for row in result.rows:
            dp = row[result.headers.index("dp_hsrc mean")]
            base = row[result.headers.index("baseline mean")]
            assert dp <= base * 1.05

    def test_table2_runtime_asymmetry(self, experiment_cache):
        result = experiment_cache("table2")
        for row in result.rows:
            dp_time = row[result.headers.index("dp_hsrc time (s)")]
            opt_time = row[result.headers.index("optimal time (s)")]
            assert dp_time < opt_time  # the paper's headline asymmetry


class TestRegistry:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("figure99")

    def test_registry_modules_all_importable(self):
        import importlib

        for name in EXPERIMENTS:
            module = importlib.import_module(f"repro.experiments.{name}")
            assert callable(module.run)
