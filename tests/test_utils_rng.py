"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a, b = ensure_rng(7), ensure_rng(7)
        assert a.random() == b.random()

    def test_different_seeds_differ(self):
        assert ensure_rng(1).random() != ensure_rng(2).random()

    def test_generator_passthrough_is_identity(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g

    def test_numpy_integer_seed_accepted(self):
        assert isinstance(ensure_rng(np.int64(5)), np.random.Generator)

    def test_rejects_strings(self):
        with pytest.raises(TypeError, match="seed must be"):
            ensure_rng("not-a-seed")

    def test_rejects_floats(self):
        with pytest.raises(TypeError):
            ensure_rng(1.5)


class TestSpawnRngs:
    def test_count_respected(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_children_ok(self):
        assert spawn_rngs(0, 0) == []

    def test_children_are_independent(self):
        a, b = spawn_rngs(0, 2)
        # Different streams: drawing from one does not affect the other.
        before = b.random()
        a.random(1000)
        c, d = spawn_rngs(0, 2)
        c.random(1000)
        assert d.random() == before

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rngs(0, -1)

    def test_spawn_is_deterministic_for_seed(self):
        a1, a2 = spawn_rngs(42, 2)
        b1, b2 = spawn_rngs(42, 2)
        assert a1.random() == b1.random()
        assert a2.random() == b2.random()
