"""Unit tests for repro.obs recorders, trace export, and the report."""

import json

import pytest

from repro.exceptions import ValidationError
from repro.obs import (
    NULL_RECORDER,
    TRACE_SCHEMA,
    MetricsRecorder,
    NullRecorder,
    Recorder,
    SpanEvent,
    current_recorder,
    read_trace,
    use_recorder,
    validate_trace_file,
    validate_trace_lines,
)


class TestNullRecorder:
    def test_default_ambient_recorder_is_the_null_singleton(self):
        assert current_recorder() is NULL_RECORDER
        assert isinstance(NULL_RECORDER, NullRecorder)
        assert NULL_RECORDER.enabled is False

    def test_every_verb_is_a_noop(self):
        rec = NullRecorder()
        with rec.span("price_set", "anything", n_workers=3) as span:
            span.set(extra=1)
        rec.count("a", 5)
        rec.observe("b", 1.5)
        # The discarding ledger accepts records but keeps nothing.
        assert rec.ledger.record("m", epsilon=1.0, sensitivity=2.0) == 0.0
        assert rec.ledger.total_epsilon == 0.0
        assert len(rec.ledger) == 0

    def test_span_object_is_shared_and_reusable(self):
        rec = NullRecorder()
        assert rec.span("a") is rec.span("b")

    def test_base_recorder_is_the_null_implementation(self):
        rec = Recorder()
        rec.count("x")
        rec.observe("y", 0.0)
        with rec.span("sample"):
            pass
        assert rec.enabled is False


class TestMetricsRecorder:
    def test_span_records_kind_name_attrs_and_duration(self):
        rec = MetricsRecorder()
        with rec.span("greedy_group", "demo", n_candidates=4) as span:
            span.set(cover_size=2)
        assert len(rec.spans) == 1
        event = rec.spans[0]
        assert event.kind == "greedy_group"
        assert event.name == "demo"
        assert event.seconds >= 0.0
        assert event.attrs == {"n_candidates": 4, "cover_size": 2}

    def test_span_name_defaults_to_kind(self):
        rec = MetricsRecorder()
        with rec.span("sample"):
            pass
        assert rec.spans[0].name == "sample"

    def test_counters_accumulate(self):
        rec = MetricsRecorder()
        rec.count("greedy.iterations")
        rec.count("greedy.iterations", 4)
        assert rec.counters == {"greedy.iterations": 5.0}

    def test_histograms_sketch_samples(self):
        rec = MetricsRecorder()
        for v in (3.0, 1.0, 2.0):
            rec.observe("residual", v)
        sketch = rec.histograms["residual"]
        assert sketch.count == 3
        assert sketch.min == 1.0
        assert sketch.max == 3.0
        assert sketch.sum == 6.0
        assert sketch.quantile(0.5) == pytest.approx(2.0, rel=0.01)

    def test_aggregation_by_kind(self):
        rec = MetricsRecorder()
        for kind in ("sample", "exp_mech", "sample"):
            with rec.span(kind):
                pass
        assert rec.span_counts_by_kind() == {"exp_mech": 1, "sample": 2}
        seconds = rec.span_seconds_by_kind()
        assert sorted(seconds) == ["exp_mech", "sample"]
        assert all(s >= 0 for s in seconds.values())

    def test_span_exceptions_propagate_but_span_is_recorded(self):
        rec = MetricsRecorder()
        with pytest.raises(RuntimeError):
            with rec.span("experiment", "boom"):
                raise RuntimeError("boom")
        assert rec.spans[0].name == "boom"


class TestUseRecorder:
    def test_installs_and_restores(self):
        rec = MetricsRecorder()
        with use_recorder(rec) as active:
            assert active is rec
            assert current_recorder() is rec
        assert current_recorder() is NULL_RECORDER

    def test_scopes_nest(self):
        outer, inner = MetricsRecorder(), MetricsRecorder()
        with use_recorder(outer):
            with use_recorder(inner):
                assert current_recorder() is inner
            assert current_recorder() is outer

    def test_restores_on_exception(self):
        rec = MetricsRecorder()
        with pytest.raises(ValueError):
            with use_recorder(rec):
                raise ValueError
        assert current_recorder() is NULL_RECORDER


def _populated_recorder() -> MetricsRecorder:
    rec = MetricsRecorder()
    with rec.span("price_set", "demo.price_set", n_workers=10):
        pass
    with rec.span("exp_mech", "demo.exp_mech"):
        pass
    rec.count("auction.runs", 2)
    rec.observe("greedy.residual_demand", 1.5)
    rec.observe("greedy.residual_demand", 0.5)
    rec.ledger.record("demo", epsilon=0.2, sensitivity=30.0)
    rec.ledger.record("demo", epsilon=0.3, sensitivity=30.0)
    return rec


class TestSnapshotMerge:
    def test_snapshot_round_trips_through_merge(self):
        src = _populated_recorder()
        snapshot = src.snapshot()
        # Snapshots must be JSON-able (hence picklable for the pool).
        json.dumps(snapshot)
        dst = MetricsRecorder()
        dst.merge_snapshot(snapshot)
        assert [e.to_json_obj() for e in dst.spans] == [
            e.to_json_obj() for e in src.spans
        ]
        assert dst.counters == src.counters
        assert dst.histograms == src.histograms
        assert dst.ledger.snapshot()["entries"] == src.ledger.snapshot()["entries"]
        assert dst.ledger.total_epsilon == src.ledger.total_epsilon

    def test_merge_accumulates_counters_and_ledger(self):
        a, b = _populated_recorder(), _populated_recorder()
        a.merge(b)
        assert a.counters["auction.runs"] == 4.0
        assert len(a.ledger) == 4
        assert a.ledger.total_epsilon == pytest.approx(1.0)

    def test_merge_order_determines_span_order(self):
        sink = MetricsRecorder()
        for name in ("first", "second"):
            part = MetricsRecorder()
            with part.span("batch", name):
                pass
            sink.merge_snapshot(part.snapshot())
        assert [e.name for e in sink.spans] == ["first", "second"]


class TestMergeSnapshotEdgeCases:
    def test_snapshot_carries_the_v2_schema(self):
        from repro.obs import METRICS_SCHEMA

        assert METRICS_SCHEMA == "repro-metrics/2"
        assert _populated_recorder().snapshot()["schema"] == METRICS_SCHEMA

    def test_empty_snapshot_is_a_noop(self):
        rec = _populated_recorder()
        before = rec.snapshot()
        rec.merge_snapshot({})
        assert rec.snapshot() == before

    def test_missing_keys_are_tolerated(self):
        rec = MetricsRecorder()
        rec.merge_snapshot({"counters": {"only.counter": 2.0}})
        rec.merge_snapshot({"histograms": {}})
        rec.merge_snapshot({"spans": []})
        assert rec.counters == {"only.counter": 2.0}
        assert rec.histograms == {}
        assert rec.spans == []

    def test_v1_raw_list_histograms_reobserve(self):
        rec = MetricsRecorder()
        rec.observe("residual", 10.0)
        # A pre-sketch snapshot stored the raw sample list.
        rec.merge_snapshot({"histograms": {"residual": [1.0, 2.0], "fresh": [5.0]}})
        assert rec.histograms["residual"].count == 3
        assert rec.histograms["residual"].min == 1.0
        assert rec.histograms["fresh"].count == 1

    def test_sketch_alpha_mismatch_rejected(self):
        import pytest as _pytest

        from repro.obs import QuantileSketch

        rec = MetricsRecorder()
        rec.observe("residual", 1.0)
        odd = QuantileSketch(relative_error=0.005)
        odd.observe(2.0)
        with _pytest.raises(ValueError, match="relative_error"):
            rec.merge_snapshot({"histograms": {"residual": odd.to_json_obj()}})

    def test_absent_name_adopts_the_incoming_sketch_alpha(self):
        from repro.obs import QuantileSketch

        rec = MetricsRecorder()
        odd = QuantileSketch(relative_error=0.005)
        odd.observe(2.0)
        rec.merge_snapshot({"histograms": {"fresh": odd.to_json_obj()}})
        assert rec.histograms["fresh"].relative_error == 0.005

    def test_four_way_process_merge_is_deterministic(self):
        import numpy as np

        rng = np.random.default_rng(17)
        chunks = [rng.lognormal(0.0, 1.5, size=400) for _ in range(4)]

        def merged(order):
            sink = MetricsRecorder()
            for i in order:
                part = MetricsRecorder()
                for v in chunks[i]:
                    part.observe("residual", v)
                part.count("runs")
                sink.merge_snapshot(part.snapshot())
            return sink

        serial = MetricsRecorder()
        for chunk in chunks:
            for v in chunk:
                serial.observe("residual", v)

        forward, backward = merged([0, 1, 2, 3]), merged([3, 2, 1, 0])
        for q in (0.1, 0.5, 0.9, 0.99):
            assert (
                forward.histograms["residual"].quantile(q)
                == backward.histograms["residual"].quantile(q)
                == serial.histograms["residual"].quantile(q)
            )
        assert forward.counters == {"runs": 4.0}


class TestTrace:
    def test_trace_lines_validate_and_summarize(self):
        rec = _populated_recorder()
        lines = rec.trace_lines(meta={"generator": "unit-test"})
        summary = validate_trace_lines(lines)
        assert summary["span_kinds"] == ["exp_mech", "price_set"]
        assert summary["n_spans"] == 2
        assert summary["counters"]["auction.runs"] == 2.0
        assert summary["ledger_entries"] == 2
        assert summary["total_epsilon"] == pytest.approx(0.5)

    def test_first_line_is_the_meta_header(self):
        lines = _populated_recorder().trace_lines(meta={"generator": "unit-test"})
        header = json.loads(lines[0])
        assert header["type"] == "meta"
        assert header["schema"] == TRACE_SCHEMA
        assert header["generator"] == "unit-test"

    def test_write_trace_and_read_back(self, tmp_path):
        rec = _populated_recorder()
        path = rec.write_trace(tmp_path / "sub" / "trace.jsonl")
        assert path.exists()
        summary = validate_trace_file(path)
        assert summary["ledger_entries"] == 2
        objs = read_trace(path)
        assert objs[0]["type"] == "meta"
        assert objs[-1]["type"] == "ledger_total"

    def test_empty_recorder_still_produces_a_valid_trace(self):
        summary = validate_trace_lines(MetricsRecorder().trace_lines())
        assert summary["n_spans"] == 0
        assert summary["total_epsilon"] == 0.0

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda lines: ["not json"] + lines[1:], "not valid JSON"),
            (lambda lines: lines[1:], "first line must be the meta header"),
            (
                lambda lines: [lines[0].replace("repro-trace/1", "bogus/9")] + lines[1:],
                "unsupported schema",
            ),
            (
                lambda lines: [
                    line.replace('"seconds"', '"SECONDS"') for line in lines
                ],
                "missing keys",
            ),
            (lambda lines: lines[:-1], "no ledger_total trailer"),
        ],
    )
    def test_malformed_traces_rejected(self, mutate, match):
        lines = _populated_recorder().trace_lines()
        with pytest.raises(ValidationError, match=match):
            validate_trace_lines(mutate(lines))

    def test_tampered_trailer_epsilon_rejected(self):
        lines = _populated_recorder().trace_lines()
        trailer = json.loads(lines[-1])
        trailer["total_epsilon"] = 99.0
        with pytest.raises(ValidationError, match="does not match"):
            validate_trace_lines(lines[:-1] + [json.dumps(trailer)])

    def test_negative_span_seconds_rejected(self):
        lines = [
            json.dumps({"type": "meta", "schema": TRACE_SCHEMA}),
            json.dumps(
                {
                    "type": "span",
                    "kind": "sample",
                    "name": "x",
                    "seconds": -1.0,
                    "attrs": {},
                }
            ),
        ]
        with pytest.raises(ValidationError, match="seconds"):
            validate_trace_lines(lines)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValidationError, match="empty"):
            validate_trace_lines([])


class TestReport:
    def test_report_contains_all_sections(self):
        report = _populated_recorder().report()
        assert "Span time by kind" in report
        assert "Counters" in report
        assert "Value histograms" in report
        assert "Privacy ledger" in report
        assert "composed ε = 0.5" in report
        # Two ledger entries → the composition trajectory chart appears.
        assert "Composed ε by draw" in report

    def test_empty_report_placeholder(self):
        assert MetricsRecorder().report() == "(no metrics recorded)"

    def test_spanless_recorder_skips_span_section(self):
        rec = MetricsRecorder()
        rec.count("only.counter")
        report = rec.report()
        assert "Counters" in report
        assert "Span time by kind" not in report
