"""Unit tests for repro.mechanisms.threshold_auction."""

import numpy as np
import pytest

from repro.auction.bids import Bid
from repro.exceptions import InfeasibleError
from repro.mechanisms.threshold_auction import ThresholdPaymentAuction
from repro.workloads.generator import generate_instance


def roomy_instance(tiny_setting, seed):
    """Threshold payments need competition: use a dense market."""
    return generate_instance(tiny_setting.with_population(n_workers=60), seed=seed)


class TestSelectionAndPayments:
    def test_winner_set_is_feasible(self, tiny_setting):
        instance, _ = roomy_instance(tiny_setting, seed=0)
        outcome = ThresholdPaymentAuction().run(instance)
        coverage = instance.effective_quality[outcome.winners].sum(axis=0)
        assert np.all(coverage >= instance.demands - 1e-9)

    def test_individual_rationality(self, tiny_setting):
        """Every winner's critical payment is at least her (truthful) ask."""
        instance, pool = roomy_instance(tiny_setting, seed=1)
        outcome = ThresholdPaymentAuction().run(instance)
        for w in outcome.winners:
            assert outcome.payments[int(w)] >= pool.costs[int(w)] - 1e-9

    def test_losers_paid_nothing(self, tiny_setting):
        instance, _ = roomy_instance(tiny_setting, seed=2)
        outcome = ThresholdPaymentAuction().run(instance)
        losers = np.setdiff1d(np.arange(instance.n_workers), outcome.winners)
        assert np.all(outcome.payments[losers] == 0.0)

    def test_deterministic(self, tiny_setting):
        instance, _ = roomy_instance(tiny_setting, seed=3)
        a = ThresholdPaymentAuction().run(instance)
        b = ThresholdPaymentAuction().run(instance)
        assert np.array_equal(a.winners, b.winners)
        assert np.array_equal(a.payments, b.payments)

    def test_payments_differentiated(self, tiny_setting):
        """Unlike the single-price mechanisms, payments generally differ."""
        for seed in range(5):
            instance, _ = roomy_instance(tiny_setting, seed=seed)
            outcome = ThresholdPaymentAuction().run(instance)
            winner_pay = outcome.payments[outcome.winners]
            if winner_pay.size >= 2 and np.unique(winner_pay).size > 1:
                return
        pytest.skip("no differentiated instance found in 5 seeds")


class TestTruthfulness:
    def test_critical_payment_is_winning_threshold(self, tiny_setting):
        """Bidding below the payment keeps winning; above it loses.

        This is the defining property of critical payments, hence of
        exact truthfulness over a monotone rule.
        """
        instance, _ = roomy_instance(tiny_setting, seed=4)
        auction = ThresholdPaymentAuction()
        outcome = auction.run(instance)
        winner = int(outcome.winners[0])
        critical = float(outcome.payments[winner])
        bundle = instance.bids[winner].bundle

        below = instance.replace_bid(winner, Bid(bundle, max(critical - 0.2, 0.0)))
        assert winner in auction.run(below).winner_set

        above = instance.replace_bid(winner, Bid(bundle, critical + 0.2))
        assert winner not in auction.run(above).winner_set

    def test_no_profitable_price_deviation(self, tiny_setting):
        """Empirical truthfulness: deviations never beat honesty."""
        instance, pool = roomy_instance(tiny_setting, seed=5)
        auction = ThresholdPaymentAuction()
        honest = auction.run(instance)
        for worker in range(0, instance.n_workers, 5):
            cost = float(pool.costs[worker])
            honest_utility = honest.utility(worker, cost)
            for lie in (cost * 0.5, cost * 1.5, cost + 2.0):
                deviated = instance.replace_bid(
                    worker, Bid(instance.bids[worker].bundle, max(lie, 0.0))
                )
                try:
                    outcome = auction.run(deviated)
                except InfeasibleError:
                    continue
                assert outcome.utility(worker, cost) <= honest_utility + 1e-6


class TestNoPrivacy:
    def test_deterministic_mechanism_leaks(self, tiny_setting):
        """A bid change that shifts the payment vector is fully observable.

        This is the motivating leak: we find a neighbor whose payments
        differ, i.e. the mechanism's 'distribution' moved with probability
        1 — empirical ε = ∞.
        """
        instance, _ = roomy_instance(tiny_setting, seed=6)
        auction = ThresholdPaymentAuction()
        base = auction.run(instance)
        rng = np.random.default_rng(0)
        for _ in range(20):
            worker = int(rng.integers(instance.n_workers))
            new_price = float(rng.uniform(tiny_setting.c_min, tiny_setting.c_max))
            neighbor = instance.replace_bid(
                worker, Bid(instance.bids[worker].bundle, new_price)
            )
            try:
                moved = auction.run(neighbor)
            except InfeasibleError:
                continue
            if not np.allclose(base.payments, moved.payments):
                return  # leak demonstrated
        pytest.skip("no payment-moving neighbor found in 20 draws")


class TestEdgeCases:
    def test_irreplaceable_worker_raises(self):
        """A monopolist has an unbounded critical payment."""
        import numpy as np

        from repro.auction.bids import Bid, BidProfile
        from repro.auction.instance import AuctionInstance

        bids = BidProfile([Bid([0], 1.0), Bid([1], 1.0)])
        instance = AuctionInstance(
            bids=bids,
            quality=np.array([[0.9, 0.0], [0.0, 0.9]]),
            demands=np.array([0.5, 0.5]),
            price_grid=np.array([1.0, 2.0]),
            c_min=1.0,
            c_max=2.0,
        )
        with pytest.raises(InfeasibleError, match="irreplaceable"):
            ThresholdPaymentAuction().run(instance)
