"""Tests for the report generator (repro.experiments.report)."""

import pytest

import repro.experiments.report as report_module
from repro.experiments.report import generate_report, write_report


@pytest.fixture
def only_table1(monkeypatch):
    """Trim the registry so report tests stay fast."""
    monkeypatch.setattr(report_module, "EXPERIMENTS", ("table1",))


class TestGenerateReport:
    def test_contains_header_and_experiment(self, only_table1):
        text = generate_report(fast=True, seed=3)
        assert "# Reproduction report" in text
        assert "## table1" in text
        assert "master seed: 3" in text
        assert "fast (shrunken sweeps)" in text

    def test_full_mode_labelled(self, only_table1):
        text = generate_report(fast=False)
        assert "full (paper scales)" in text

    def test_table_rendered_in_code_fence(self, only_table1):
        text = generate_report(fast=True)
        assert "```" in text
        assert "Table I: simulation settings" in text


class TestWriteReport:
    def test_writes_file(self, only_table1, tmp_path):
        out = write_report(tmp_path / "report.md", fast=True)
        assert out.exists()
        assert "Reproduction report" in out.read_text()


class TestCLIReport:
    def test_cli_report_command(self, only_table1, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["report", "--fast"]) == 0
        assert "wrote" in capsys.readouterr().out
        assert (tmp_path / "reproduction_report.md").exists()
