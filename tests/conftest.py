"""Shared fixtures: hand-built toy markets and a shrunken Table-I setting.

The toy instances are small enough that expected values can be verified
by hand (or brute force) in the tests; ``tiny_setting`` gives generated
markets that keep every solver fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.auction.bids import Bid, BidProfile
from repro.auction.instance import AuctionInstance
from repro.workloads.settings import SimulationSetting


@pytest.fixture
def toy_instance() -> AuctionInstance:
    """Three workers, two tasks, three grid prices — fully hand-checkable.

    * worker 0: bundle {0},    price 1, quality 0.64 on task 0
    * worker 1: bundle {1},    price 2, quality 0.64 on task 1
    * worker 2: bundle {0, 1}, price 3, quality 0.64 on both
    * demands: 0.5 per task (one covering worker suffices)

    Feasibility: price 1 affords only worker 0 (task 1 uncovered) — not
    feasible; price 2 affords workers {0, 1} — feasible; price 3 affords
    everyone.  So the feasible price set is {2, 3}.
    """
    bids = BidProfile([Bid([0], 1.0), Bid([1], 2.0), Bid([0, 1], 3.0)])
    quality = np.full((3, 2), 0.64)
    return AuctionInstance(
        bids=bids,
        quality=quality,
        demands=np.array([0.5, 0.5]),
        price_grid=np.array([1.0, 2.0, 3.0]),
        c_min=1.0,
        c_max=3.0,
    )


@pytest.fixture
def tiny_setting() -> SimulationSetting:
    """A Table-I-shaped setting small enough for exhaustive solvers."""
    return SimulationSetting(
        name="tiny",
        epsilon=0.5,
        c_min=1.0,
        c_max=10.0,
        bundle_size=(3, 5),
        skill_range=(0.3, 0.95),
        error_threshold_range=(0.3, 0.5),
        n_workers=25,
        n_tasks=6,
        price_range=(4.0, 10.0),
        grid_step=0.5,
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded generator for tests needing ad-hoc randomness."""
    return np.random.default_rng(12345)


_EXPERIMENT_CACHE: dict = {}


@pytest.fixture(scope="session")
def experiment_cache():
    """Session-wide cache of fast-mode experiment runs (seed 0).

    The experiment runs dominate the suite's wall-clock (figure1 alone
    is minutes), and several test files plus the golden suite all need
    the same ``run(fast=True, seed=0)`` output — pull it through this
    factory so each experiment runs at most once per session.
    """

    def get(name: str):
        if name not in _EXPERIMENT_CACHE:
            from repro.cli import run_experiment

            _EXPERIMENT_CACHE[name] = run_experiment(name, fast=True)
        return _EXPERIMENT_CACHE[name]

    return get
