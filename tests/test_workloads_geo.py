"""Unit tests for repro.workloads.geo (route-structured markets)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.workloads.geo import GeoCityConfig, generate_geo_market


@pytest.fixture(scope="module")
def small_market():
    config = GeoCityConfig(rows=3, cols=4, n_commuters=120, error_threshold=0.3)
    return config, generate_geo_market(config, seed=0)


class TestConfig:
    def test_segment_count(self):
        config = GeoCityConfig(rows=3, cols=4)
        # 3 rows of 3 horizontal segments + 4 cols of 2 vertical segments.
        assert config.n_segments == 3 * 3 + 4 * 2

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValidationError):
            GeoCityConfig(rows=1, cols=5)

    def test_rejects_bad_quality_range(self):
        with pytest.raises(ValidationError):
            GeoCityConfig(device_quality_range=(0.4, 0.9))

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValidationError):
            GeoCityConfig(error_threshold=0.0)


class TestGeneratedMarket:
    def test_shapes_line_up(self, small_market):
        config, market = small_market
        assert market.instance.n_tasks == config.n_segments
        assert market.instance.n_workers == config.n_commuters
        assert market.tasks.n_tasks == config.n_segments
        assert len(market.segment_index) == config.n_segments

    def test_market_is_feasible(self, small_market):
        _, market = small_market
        coverage = market.instance.effective_quality.sum(axis=0)
        assert np.all(coverage >= market.instance.demands - 1e-9)

    def test_bundles_are_connected_routes(self, small_market):
        """Every bundle's segments must form one connected path."""
        import networkx as nx

        config, market = small_market
        edge_of = {idx: edge for edge, idx in market.segment_index.items()}
        for bundle in market.pool.bundles:
            subgraph = nx.Graph(edge_of[s] for s in bundle)
            assert nx.is_connected(subgraph)

    def test_costs_grow_with_route_length(self, small_market):
        _, market = small_market
        lengths = np.array([len(b) for b in market.pool.bundles], dtype=float)
        costs = market.pool.costs
        corr = np.corrcoef(lengths, costs)[0, 1]
        assert corr > 0.5

    def test_skills_above_half(self, small_market):
        _, market = small_market
        assert np.all(market.pool.skills >= 0.5)

    def test_reproducible(self):
        config = GeoCityConfig(rows=3, cols=3, n_commuters=100, error_threshold=0.35)
        a = generate_geo_market(config, seed=5)
        b = generate_geo_market(config, seed=5)
        assert np.array_equal(a.pool.skills, b.pool.skills)
        assert a.pool.bundles == b.pool.bundles

    def test_infeasible_city_raises(self):
        from repro.exceptions import InfeasibleError

        sparse = GeoCityConfig(
            rows=6, cols=6, n_commuters=5, error_threshold=0.05
        )
        with pytest.raises(InfeasibleError, match="cannot cover"):
            generate_geo_market(sparse, seed=0, max_retries=3)

    def test_mechanism_runs_on_geo_market(self, small_market):
        from repro.mechanisms.dp_hsrc import DPHSRCAuction

        _, market = small_market
        outcome = DPHSRCAuction(epsilon=0.5).run(market.instance, seed=1)
        assert outcome.n_winners > 0


class TestGeoExperiment:
    def test_fast_run_shape(self):
        from repro.cli import run_experiment

        result = run_experiment("geo_workload", fast=True)
        assert len(result.rows) == 3
        for row in result.rows:
            geo = row[result.headers.index("dp_hsrc geo E[R]")]
            base_geo = row[result.headers.index("baseline geo E[R]")]
            assert geo <= base_geo * 1.05  # adaptive rule wins on routes too
