"""Unit tests for repro.auction.bids."""

import numpy as np
import pytest

from repro.auction.bids import Bid, BidProfile
from repro.exceptions import ValidationError


class TestBid:
    def test_constructs_frozenset_bundle(self):
        bid = Bid([2, 0, 2], 5.0)
        assert bid.bundle == frozenset({0, 2})
        assert bid.price == 5.0

    def test_empty_bundle_rejected(self):
        with pytest.raises(ValidationError, match="at least one task"):
            Bid([], 1.0)

    def test_negative_task_rejected(self):
        with pytest.raises(ValidationError, match="non-negative"):
            Bid([-1], 1.0)

    def test_negative_price_rejected(self):
        with pytest.raises(ValidationError, match="price"):
            Bid([0], -0.5)

    def test_nan_price_rejected(self):
        with pytest.raises(ValidationError):
            Bid([0], float("nan"))

    def test_zero_price_allowed(self):
        assert Bid([0], 0.0).price == 0.0

    def test_with_price_preserves_bundle(self):
        bid = Bid([1, 2], 3.0).with_price(4.0)
        assert bid.bundle == frozenset({1, 2})
        assert bid.price == 4.0

    def test_with_bundle_preserves_price(self):
        bid = Bid([1], 3.0).with_bundle([0, 4])
        assert bid.bundle == frozenset({0, 4})
        assert bid.price == 3.0

    def test_covers(self):
        bid = Bid([1, 3], 1.0)
        assert bid.covers(3)
        assert not bid.covers(2)

    def test_hashable_and_equal(self):
        assert Bid([0, 1], 2.0) == Bid([1, 0], 2.0)
        assert hash(Bid([0], 1.0)) == hash(Bid([0], 1.0))

    def test_immutable(self):
        bid = Bid([0], 1.0)
        with pytest.raises(AttributeError):
            bid.price = 2.0


class TestBidProfile:
    def _profile(self):
        return BidProfile([Bid([0], 1.0), Bid([1], 3.0), Bid([0, 1], 2.0)])

    def test_len_iter_getitem(self):
        profile = self._profile()
        assert len(profile) == 3
        assert [b.price for b in profile] == [1.0, 3.0, 2.0]
        assert profile[1].price == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValidationError, match="at least one bid"):
            BidProfile([])

    def test_non_bid_rejected(self):
        with pytest.raises(ValidationError, match="not a Bid"):
            BidProfile([Bid([0], 1.0), "nope"])

    def test_prices_vector(self):
        assert self._profile().prices.tolist() == [1.0, 3.0, 2.0]

    def test_replace_returns_new_profile(self):
        profile = self._profile()
        new = profile.replace(0, Bid([1], 9.0))
        assert new[0].price == 9.0
        assert profile[0].price == 1.0  # original untouched
        assert new[1] == profile[1]

    def test_replace_out_of_range(self):
        with pytest.raises(ValidationError, match="out of range"):
            self._profile().replace(3, Bid([0], 1.0))

    def test_bundle_mask(self):
        mask = self._profile().bundle_mask(2)
        assert mask.tolist() == [[True, False], [False, True], [True, True]]

    def test_bundle_mask_task_out_of_range(self):
        with pytest.raises(ValidationError, match="only 1 tasks"):
            self._profile().bundle_mask(1)

    def test_min_max_price(self):
        profile = self._profile()
        assert profile.min_price() == 1.0
        assert profile.max_price() == 3.0

    def test_equality_and_hash(self):
        assert self._profile() == self._profile()
        assert hash(self._profile()) == hash(self._profile())

    def test_prices_is_fresh_array(self):
        profile = self._profile()
        p = profile.prices
        p[0] = 99.0
        assert profile.prices[0] == 1.0
