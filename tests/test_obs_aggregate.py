"""Tests for repro.obs.aggregate — the mergeable quantile sketch."""

import json
import sys

import numpy as np
import pytest

from repro.obs import DEFAULT_RELATIVE_ERROR, QuantileSketch


class TestObserve:
    def test_exact_count_sum_min_max(self):
        sketch = QuantileSketch()
        values = [3.0, -1.5, 0.0, 2.5, 100.0]
        sketch.observe_many(values)
        assert sketch.count == 5
        assert sketch.sum == pytest.approx(sum(values))
        assert sketch.min == -1.5
        assert sketch.max == 100.0
        assert sketch.mean == pytest.approx(sum(values) / 5)
        assert len(sketch) == 5

    def test_empty_sketch(self):
        sketch = QuantileSketch()
        assert sketch.count == 0
        # In-memory sentinels are the merge identities (±inf); the
        # serialized form maps them to None.
        assert sketch.min == float("inf") and sketch.max == float("-inf")
        assert sketch.to_json_obj()["min"] is None
        assert np.isnan(sketch.quantile(0.5))
        assert np.isnan(sketch.mean)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_rejected(self, bad):
        with pytest.raises(ValueError, match="finite"):
            QuantileSketch().observe(bad)

    def test_extreme_boundary_quantiles_are_exact(self):
        sketch = QuantileSketch()
        sketch.observe_many([7.0, 1.0, 3.0])
        assert sketch.quantile(0.0) == 1.0
        assert sketch.quantile(1.0) == 7.0

    def test_quantile_range_validated(self):
        with pytest.raises(ValueError):
            QuantileSketch().quantile(1.5)


class TestAccuracy:
    """Quantiles stay within the documented relative-error bound."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize(
        "sampler",
        [
            lambda rng: rng.lognormal(0.0, 2.0, size=20_000),
            lambda rng: rng.uniform(1e-6, 1e6, size=20_000),
            lambda rng: rng.normal(0.0, 50.0, size=20_000),  # mixed signs
        ],
    )
    def test_quantiles_within_relative_error(self, seed, sampler):
        rng = np.random.default_rng(seed)
        values = sampler(rng)
        sketch = QuantileSketch()
        sketch.observe_many(values)
        for q in (0.01, 0.1, 0.5, 0.9, 0.99):
            exact = float(np.quantile(values, q, method="inverted_cdf"))
            approx = sketch.quantile(q)
            # |approx - exact| <= alpha * |exact|: the DDSketch guarantee
            # on the value axis (rank-exact bucket walk, bounded-error
            # representative).
            assert abs(approx - exact) <= DEFAULT_RELATIVE_ERROR * abs(exact) + 1e-12

    def test_tighter_alpha_is_tighter(self):
        rng = np.random.default_rng(3)
        values = rng.lognormal(1.0, 1.5, size=5_000)
        tight = QuantileSketch(relative_error=0.001)
        tight.observe_many(values)
        exact = float(np.quantile(values, 0.9, method="inverted_cdf"))
        assert abs(tight.quantile(0.9) - exact) <= 0.001 * exact + 1e-12


class TestMemoryBound:
    def test_bounded_at_a_million_observations(self):
        """10^6 observations over 12 decades stay within a few KB."""
        rng = np.random.default_rng(7)
        sketch = QuantileSketch()
        sketch.observe_many(rng.lognormal(0.0, 4.0, size=1_000_000))
        assert sketch.count == 1_000_000
        # gamma ~ 1.02 → ~1150 buckets per decade-range actually hit;
        # 12 decades of lognormal mass lands well under 4096 buckets.
        assert sketch.n_buckets < 4096
        payload = json.dumps(sketch.to_json_obj())
        assert sys.getsizeof(payload) < 128 * 1024
        # The dict-of-int-counts core is the whole state: a few KB of
        # keys, nothing proportional to the observation count.
        assert sketch.n_buckets * 64 < 256 * 1024

    def test_raw_list_would_not_be_bounded(self):
        # Sanity anchor for the bound above: the sketch state is >100x
        # smaller than the raw samples it replaced.
        sketch = QuantileSketch()
        rng = np.random.default_rng(11)
        values = rng.lognormal(0.0, 2.0, size=100_000)
        sketch.observe_many(values)
        assert sketch.n_buckets < len(values) / 100


class TestMerge:
    def test_merge_equals_single_pass(self):
        rng = np.random.default_rng(5)
        values = rng.lognormal(0.0, 2.0, size=8_000)
        whole = QuantileSketch()
        whole.observe_many(values)
        parts = [QuantileSketch() for _ in range(4)]
        for part, chunk in zip(parts, np.split(values, 4)):
            part.observe_many(chunk)
        merged = QuantileSketch()
        for part in parts:
            merged.merge(part)
        # Bucket counts are integers: merging is order-free, so the
        # quantiles are bit-identical to the single-pass sketch.
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert merged.quantile(q) == whole.quantile(q)
        assert merged.count == whole.count
        assert merged.min == whole.min and merged.max == whole.max

    def test_four_way_merge_order_invariance(self):
        rng = np.random.default_rng(9)
        chunks = [rng.lognormal(0.0, 1.0, size=500) for _ in range(4)]
        def merged_in(order):
            sink = QuantileSketch()
            for i in order:
                part = QuantileSketch()
                part.observe_many(chunks[i])
                sink.merge(part)
            return sink
        forward = merged_in([0, 1, 2, 3])
        backward = merged_in([3, 2, 1, 0])
        for q in (0.1, 0.5, 0.9, 0.99):
            assert forward.quantile(q) == backward.quantile(q)

    def test_merge_rejects_mismatched_relative_error(self):
        a = QuantileSketch(relative_error=0.01)
        b = QuantileSketch(relative_error=0.001)
        with pytest.raises(ValueError, match="relative_error"):
            a.merge(b)


class TestSerialization:
    def test_round_trip_preserves_everything(self):
        sketch = QuantileSketch()
        sketch.observe_many([-3.0, 0.0, 0.0, 1.5, 2.5, 1e9, 1e-9])
        obj = sketch.to_json_obj()
        json.dumps(obj)  # must be plain-JSON-able for pool transport
        back = QuantileSketch.from_json_obj(obj)
        assert back == sketch
        for q in (0.0, 0.5, 0.99, 1.0):
            assert back.quantile(q) == sketch.quantile(q)

    def test_type_tag_enforced(self):
        with pytest.raises(ValueError, match="quantile_sketch"):
            QuantileSketch.from_json_obj({"type": "bogus"})

    def test_summary_keys(self):
        sketch = QuantileSketch()
        sketch.observe_many([1.0, 2.0, 3.0])
        summary = sketch.summary()
        assert sorted(summary) == [
            "count", "max", "mean", "min", "p50", "p90", "p99", "sum",
        ]
        assert summary["count"] == 3
