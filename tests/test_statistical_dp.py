"""Statistical tests: sampled outcomes vs exact PMFs, empirical ε-DP.

Two Monte-Carlo audits complement the repo's exact distribution checks:

* **Chi-square goodness of fit** — ~5k outcomes drawn through
  ``DPHSRCAuction.run`` (the deployed execution path) must be consistent
  with the analytically exact ``price_pmf`` frequencies.
* **Empirical ε-DP** — a black-box observer sampling outcomes on
  neighboring bid profiles must measure a log-frequency ratio bounded by
  the nominal ε (plus sampling-noise allowance), via
  :func:`repro.analysis.dp_verification.empirical_epsilon`.

All randomness is seeded, so the suite is reproducible: the chi-square
p-values and empirical ε estimates are fixed numbers, not flaky draws.
"""

import numpy as np
import pytest
from scipy import stats

from repro.analysis.dp_verification import dp_audit, empirical_epsilon
from repro.mechanisms.dp_hsrc import DPHSRCAuction
from repro.workloads.generator import generate_instance, matched_neighbor
from repro.workloads.settings import SimulationSetting

N_RUN_SAMPLES = 5_000
#: Rejection threshold for goodness-of-fit: with seeded sampling these
#: tests are deterministic, so a failure means a real distribution bug,
#: not bad luck.
P_VALUE_FLOOR = 1e-3


def _outcome_counts(pmf, outcomes):
    """Count sampled clearing prices per PMF support index."""
    counts = np.zeros(pmf.support_size, dtype=float)
    for outcome in outcomes:
        idx = int(np.searchsorted(pmf.prices, outcome.price))
        assert np.isclose(pmf.prices[idx], outcome.price)
        counts[idx] += 1
    return counts


class TestRunMatchesPMF:
    def test_chi_square_on_toy_instance(self, toy_instance):
        mechanism = DPHSRCAuction(epsilon=1.0)
        pmf = mechanism.price_pmf(toy_instance)
        rng = np.random.default_rng(20160627)
        outcomes = [mechanism.run(toy_instance, rng) for _ in range(N_RUN_SAMPLES)]

        counts = _outcome_counts(pmf, outcomes)
        assert counts.sum() == N_RUN_SAMPLES
        expected = pmf.probabilities * N_RUN_SAMPLES
        result = stats.chisquare(counts, expected)
        assert result.pvalue > P_VALUE_FLOOR, (
            f"sampled prices inconsistent with price_pmf (p={result.pvalue:.2e})"
        )

    def test_chi_square_on_generated_instance(self, tiny_setting):
        instance, _pool = generate_instance(tiny_setting, seed=3)
        mechanism = DPHSRCAuction(epsilon=0.5)
        pmf = mechanism.price_pmf(instance)
        # Sampling through the PMF is the same code path run() uses for
        # its draw; 5k full run() calls would recompute the identical
        # PMF 5k times for no extra coverage.
        prices = pmf.sample_prices(N_RUN_SAMPLES, seed=99)
        counts = np.array(
            [np.count_nonzero(prices == p) for p in pmf.prices], dtype=float
        )
        # Pool support points with tiny expected mass so the chi-square
        # approximation holds (textbook >=5 expected per cell).
        keep = pmf.probabilities * N_RUN_SAMPLES >= 5.0
        pooled_counts = np.append(counts[keep], counts[~keep].sum())
        pooled_expected = np.append(
            pmf.probabilities[keep] * N_RUN_SAMPLES,
            pmf.probabilities[~keep].sum() * N_RUN_SAMPLES,
        )
        if pooled_expected[-1] == 0.0:
            assert pooled_counts[-1] == 0.0
            pooled_counts, pooled_expected = pooled_counts[:-1], pooled_expected[:-1]
        result = stats.chisquare(pooled_counts, pooled_expected)
        assert result.pvalue > P_VALUE_FLOOR

    def test_winner_sets_come_from_the_committed_support(self, toy_instance):
        mechanism = DPHSRCAuction(epsilon=1.0)
        pmf = mechanism.price_pmf(toy_instance)
        committed = {
            (float(price), tuple(winners.tolist()))
            for price, winners in zip(pmf.prices, pmf.winner_sets)
        }
        rng = np.random.default_rng(7)
        for _ in range(200):
            outcome = mechanism.run(toy_instance, rng)
            assert (outcome.price, tuple(outcome.winners.tolist())) in committed


class TestEmpiricalDP:
    @pytest.fixture(scope="class")
    def market(self):
        # Class-scoped: generating a support-matched neighbor costs a few
        # PMF evaluations; reuse it across the audits below.  (Rebuilt
        # here rather than via the function-scoped tiny_setting fixture.)
        tiny = SimulationSetting(
            name="tiny",
            epsilon=0.5,
            c_min=1.0,
            c_max=10.0,
            bundle_size=(3, 5),
            skill_range=(0.3, 0.95),
            error_threshold_range=(0.3, 0.5),
            n_workers=25,
            n_tasks=6,
            price_range=(4.0, 10.0),
            grid_step=0.5,
        )
        instance, _pool = generate_instance(tiny, seed=11)
        neighbor = matched_neighbor(instance, tiny, worker=4, seed=13)
        return tiny, instance, neighbor

    def test_empirical_epsilon_within_budget(self, market):
        _setting, instance, neighbor = market
        epsilon = 0.8
        mechanism = DPHSRCAuction(epsilon=epsilon)
        estimate = empirical_epsilon(
            mechanism, instance, neighbor, n_samples=5_000, seed=2024
        )
        # The estimator converges to the true max divergence (<= eps by
        # Theorem 2) from finite samples; smoothing keeps it finite but
        # adds noise on rare prices, hence the allowance.
        assert estimate <= epsilon + 0.35, (
            f"empirical epsilon {estimate:.3f} exceeds budget {epsilon}"
        )

    def test_empirical_epsilon_scales_with_budget(self, market):
        # A 10x smaller privacy budget must measurably flatten the
        # distributions: the empirical estimate shrinks accordingly.
        _setting, instance, neighbor = market
        loose = empirical_epsilon(
            DPHSRCAuction(epsilon=2.0), instance, neighbor, n_samples=4_000, seed=5
        )
        tight = empirical_epsilon(
            DPHSRCAuction(epsilon=0.2), instance, neighbor, n_samples=4_000, seed=5
        )
        assert tight <= loose + 1e-9

    def test_exact_audit_agrees(self, market):
        setting, instance, _neighbor = market
        epsilon = 0.8
        report = dp_audit(
            DPHSRCAuction(epsilon=epsilon),
            instance,
            setting,
            epsilon,
            n_neighbors=4,
            seed=17,
        )
        assert report.satisfied
        assert report.empirical_epsilon <= epsilon + 1e-9

    def test_rejects_bad_arguments(self, market):
        _setting, instance, neighbor = market
        mechanism = DPHSRCAuction(epsilon=1.0)
        with pytest.raises(ValueError):
            empirical_epsilon(mechanism, instance, neighbor, n_samples=0)
        with pytest.raises(ValueError):
            empirical_epsilon(
                mechanism, instance, neighbor, n_samples=10, smoothing=0.0
            )
