"""Unit tests for repro.mechanisms.dp_hsrc (Algorithm 1)."""

import numpy as np
import pytest

from repro.auction.bids import Bid
from repro.exceptions import ValidationError
from repro.mechanisms.dp_hsrc import (
    DPHSRCAuction,
    payment_score_sensitivity,
    reweight_pmf,
)
from repro.workloads.generator import generate_instance


class TestConstruction:
    @pytest.mark.parametrize("eps", [0.0, -0.5])
    def test_bad_epsilon_rejected(self, eps):
        with pytest.raises(ValidationError, match="epsilon"):
            DPHSRCAuction(epsilon=eps)

    def test_name(self):
        assert DPHSRCAuction(0.1).name == "dp-hsrc"


class TestPricePMF:
    def test_toy_distribution_matches_equation_10(self, toy_instance):
        """Hand-verify the exponential-mechanism weights on the toy market."""
        pmf = DPHSRCAuction(epsilon=0.5).price_pmf(toy_instance)
        assert pmf.prices.tolist() == [2.0, 3.0]
        # Winner sets: at p=2, greedy over workers {0,1}; both needed.
        assert pmf.winner_sets[0].tolist() == [0, 1]
        # At p=3 worker 2 covers both tasks alone with the max gain.
        assert pmf.winner_sets[1].tolist() == [2]
        # Equation 10: Pr[x] ∝ exp(-eps·x|S(x)| / (2·N·c_max)).
        n, cmax, eps = 3, 3.0, 0.5
        w = np.exp(-eps * np.array([2.0 * 2, 3.0 * 1]) / (2 * n * cmax))
        expected = w / w.sum()
        assert np.allclose(pmf.probabilities, expected)

    def test_every_support_outcome_is_feasible(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=0)
        pmf = DPHSRCAuction(epsilon=0.5).price_pmf(instance)
        for k in range(pmf.support_size):
            winners = pmf.winner_sets[k]
            coverage = instance.effective_quality[winners].sum(axis=0)
            assert np.all(coverage >= instance.demands - 1e-9)

    def test_winners_always_affordable(self, tiny_setting):
        """Winners at price x all ask at most x (the IR invariant)."""
        instance, _ = generate_instance(tiny_setting, seed=1)
        pmf = DPHSRCAuction(epsilon=0.5).price_pmf(instance)
        for k in range(pmf.support_size):
            asked = instance.prices[pmf.winner_sets[k]]
            assert np.all(asked <= pmf.prices[k] + 1e-9)

    def test_deterministic_pmf(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=2)
        a = DPHSRCAuction(epsilon=0.5).price_pmf(instance)
        b = DPHSRCAuction(epsilon=0.5).price_pmf(instance)
        assert np.allclose(a.probabilities, b.probabilities)
        assert all(
            np.array_equal(x, y) for x, y in zip(a.winner_sets, b.winner_sets)
        )

    def test_smaller_epsilon_flattens_distribution(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=3)
        tight = DPHSRCAuction(epsilon=10.0).price_pmf(instance)
        loose = DPHSRCAuction(epsilon=0.01).price_pmf(instance)
        # Entropy grows as epsilon shrinks.
        def entropy(p):
            p = p[p > 0]
            return -float(np.sum(p * np.log(p)))

        assert entropy(loose.probabilities) > entropy(tight.probabilities)

    def test_expected_payment_improves_with_epsilon(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=4)
        payments = [
            DPHSRCAuction(epsilon=eps).price_pmf(instance).expected_total_payment()
            for eps in (0.01, 1.0, 100.0)
        ]
        assert payments[0] >= payments[1] >= payments[2]


class TestRun:
    def test_run_is_reproducible_with_seed(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=5)
        auction = DPHSRCAuction(epsilon=0.5)
        a = auction.run(instance, seed=7)
        b = auction.run(instance, seed=7)
        assert a.price == b.price
        assert a.winners.tolist() == b.winners.tolist()

    def test_outcome_payment_consistency(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=6)
        outcome = DPHSRCAuction(epsilon=0.5).run(instance, seed=0)
        assert outcome.total_payment == pytest.approx(
            outcome.price * outcome.n_winners
        )


class TestSensitivity:
    def test_formula(self, toy_instance):
        assert payment_score_sensitivity(toy_instance) == 3 * 3.0


class TestReweightPMF:
    def test_same_support_different_probs(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=0)
        base = DPHSRCAuction(epsilon=1.0).price_pmf(instance)
        assert base.support_size > 1  # reweighting needs a non-degenerate PMF
        re = reweight_pmf(base, instance, epsilon=5.0)
        assert np.allclose(re.prices, base.prices)
        assert not np.allclose(re.probabilities, base.probabilities)

    def test_matches_direct_computation(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=8)
        base = DPHSRCAuction(epsilon=1.0).price_pmf(instance)
        re = reweight_pmf(base, instance, epsilon=3.0)
        direct = DPHSRCAuction(epsilon=3.0).price_pmf(instance)
        assert np.allclose(re.probabilities, direct.probabilities)

    def test_rejects_bad_epsilon(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=9)
        base = DPHSRCAuction(epsilon=1.0).price_pmf(instance)
        with pytest.raises(ValidationError):
            reweight_pmf(base, instance, epsilon=0.0)


class TestDifferentialPrivacyTheorem2:
    def test_neighbor_log_ratio_within_epsilon(self, tiny_setting):
        """The headline guarantee, checked exactly on real neighbors."""
        from repro.privacy.leakage import pmf_max_log_ratio
        from repro.workloads.generator import matched_neighbor

        epsilon = 0.5
        instance, _ = generate_instance(tiny_setting, seed=10)
        auction = DPHSRCAuction(epsilon=epsilon)
        base = auction.price_pmf(instance)
        rng = np.random.default_rng(0)
        for trial in range(5):
            worker = int(rng.integers(instance.n_workers))
            neighbor = matched_neighbor(instance, tiny_setting, worker, seed=rng)
            ratio = pmf_max_log_ratio(base, auction.price_pmf(neighbor))
            assert ratio <= epsilon + 1e-9
