"""Unit tests for repro.mcs.budget_planner."""

import pytest

from repro.exceptions import ValidationError
from repro.mcs.budget_planner import (
    invert_advanced_composition,
    plan_campaign,
)
from repro.privacy.composition import advanced_composition_epsilon
from repro.workloads.generator import generate_instance


class TestInvertAdvancedComposition:
    def test_round_trips_through_forward_map(self):
        total, rounds, delta = 2.0, 50, 1e-6
        eps0 = invert_advanced_composition(total, rounds, delta)
        assert eps0 > 0
        assert advanced_composition_epsilon(eps0, rounds, delta) <= total + 1e-6
        # Maximality: nudging up breaks the budget.
        assert advanced_composition_epsilon(eps0 * 1.01, rounds, delta) > total

    def test_single_round_capped_by_total(self):
        # For 1 round advanced composition inflates, so eps0 < total.
        eps0 = invert_advanced_composition(1.0, 1, 1e-6)
        assert 0 < eps0 < 1.0

    def test_advanced_beats_basic_for_many_rounds(self):
        total, delta = 5.0, 1e-9
        rounds = 2000
        basic = total / rounds
        advanced = invert_advanced_composition(total, rounds, delta)
        assert advanced > basic

    def test_validation(self):
        with pytest.raises(Exception):
            invert_advanced_composition(0.0, 10, 1e-6)
        with pytest.raises(ValidationError):
            invert_advanced_composition(1.0, 0, 1e-6)


class TestPlanCampaign:
    @pytest.fixture(scope="class")
    def instance(self, tiny_setting_class):
        instance, _pool = generate_instance(tiny_setting_class, seed=0)
        return instance

    @pytest.fixture(scope="class")
    def tiny_setting_class(self):
        from repro.workloads.settings import SimulationSetting

        return SimulationSetting(
            name="planner",
            epsilon=0.5,
            c_min=1.0,
            c_max=10.0,
            bundle_size=(3, 5),
            skill_range=(0.3, 0.95),
            error_threshold_range=(0.3, 0.5),
            n_workers=30,
            n_tasks=6,
            price_range=(4.0, 10.0),
            grid_step=0.5,
        )

    def test_basic_plans_one_per_round_count(self, instance):
        plans = plan_campaign(instance, total_epsilon=1.0, round_options=[1, 5, 10])
        assert [p.n_rounds for p in plans] == [1, 5, 10]
        assert all(p.accounting == "basic" for p in plans)

    def test_per_round_epsilon_splits_budget(self, instance):
        plans = plan_campaign(instance, total_epsilon=1.0, round_options=[4])
        assert plans[0].epsilon_per_round == pytest.approx(0.25)

    def test_more_rounds_cost_more_per_round_payment(self, instance):
        """Splitting the budget raises the per-round expected payment."""
        plans = plan_campaign(instance, total_epsilon=2.0, round_options=[1, 20])
        one, twenty = plans
        assert twenty.expected_payment_per_round >= one.expected_payment_per_round

    def test_total_payment_identity(self, instance):
        plans = plan_campaign(instance, total_epsilon=1.0, round_options=[7])
        plan = plans[0]
        assert plan.expected_total_payment == pytest.approx(
            7 * plan.expected_payment_per_round
        )

    def test_advanced_plans_included_with_delta(self, instance):
        plans = plan_campaign(
            instance, total_epsilon=1.0, round_options=[3, 300], delta_slack=1e-9
        )
        accountings = {(p.n_rounds, p.accounting) for p in plans}
        assert (300, "advanced") in accountings

    def test_advanced_wins_for_long_campaigns(self, instance):
        plans = plan_campaign(
            instance, total_epsilon=1.0, round_options=[500], delta_slack=1e-9
        )
        by_accounting = {p.accounting: p for p in plans}
        assert (
            by_accounting["advanced"].epsilon_per_round
            > by_accounting["basic"].epsilon_per_round
        )
        assert (
            by_accounting["advanced"].expected_payment_per_round
            <= by_accounting["basic"].expected_payment_per_round + 1e-9
        )

    def test_validation(self, instance):
        with pytest.raises(ValidationError):
            plan_campaign(instance, total_epsilon=1.0, round_options=[])
        with pytest.raises(ValidationError):
            plan_campaign(instance, total_epsilon=1.0, round_options=[0])
