"""Unit tests for repro.mcs.simulation (multi-round campaigns)."""

import numpy as np
import pytest

from repro.mcs.platform import Platform
from repro.mcs.simulation import MCSSimulation
from repro.mechanisms.dp_hsrc import DPHSRCAuction
from repro.workloads.generator import generate_worker_population


def make_simulation(tiny_setting, *, estimate_skills=False, budget=None):
    # A roomier population than the fixture default: skill estimation
    # shrinks the platform's quality record, so feasibility needs slack.
    roomy = tiny_setting.with_population(n_workers=50, n_tasks=8)
    pool = generate_worker_population(roomy, seed=0)
    return MCSSimulation(
        platform=Platform(DPHSRCAuction(epsilon=tiny_setting.epsilon)),
        pool=pool,
        epsilon_per_round=tiny_setting.epsilon,
        error_threshold_range=tiny_setting.error_threshold_range,
        price_grid=tiny_setting.price_grid(),
        c_min=tiny_setting.c_min,
        c_max=tiny_setting.c_max,
        estimate_skills=estimate_skills,
        budget=budget,
    )


class TestRun:
    def test_round_count_and_indices(self, tiny_setting):
        sim = make_simulation(tiny_setting)
        records = sim.run(3, seed=1)
        assert [r.round_index for r in records] == [0, 1, 2]

    def test_epsilon_accumulates_sequentially(self, tiny_setting):
        sim = make_simulation(tiny_setting)
        records = sim.run(4, seed=2)
        expected = tiny_setting.epsilon * np.arange(1, 5)
        assert np.allclose([r.epsilon_spent for r in records], expected)

    def test_budget_enforced(self, tiny_setting):
        sim = make_simulation(tiny_setting, budget=tiny_setting.epsilon * 2 + 1e-9)
        with pytest.raises(ValueError, match="exceed"):
            sim.run(3, seed=3)

    def test_oracle_platform_has_zero_record_error(self, tiny_setting):
        sim = make_simulation(tiny_setting, estimate_skills=False)
        records = sim.run(2, seed=4)
        assert all(r.skill_record_error == 0.0 for r in records)

    def test_learning_platform_updates_record(self, tiny_setting):
        sim = make_simulation(tiny_setting, estimate_skills=True)
        records = sim.run(3, seed=5)
        # After the first round the record is an estimate, so it differs
        # from the truth.
        assert records[-1].skill_record_error > 0.0
        assert not np.array_equal(sim.skill_record, sim.pool.skills)

    def test_reproducible(self, tiny_setting):
        a = make_simulation(tiny_setting).run(2, seed=6)
        b = make_simulation(tiny_setting).run(2, seed=6)
        assert a[0].sensing.outcome.price == b[0].sensing.outcome.price
        assert a[1].sensing.accuracy == b[1].sensing.accuracy

    def test_rounds_draw_fresh_tasks(self, tiny_setting):
        sim = make_simulation(tiny_setting)
        records = sim.run(2, seed=7)
        # Coverage demands differ across rounds (fresh thresholds) with
        # overwhelming probability.
        c0 = records[0].sensing.coverage
        c1 = records[1].sensing.coverage
        assert not np.allclose(c0, c1)


class TestGoldSkillEstimator:
    def test_gold_record_converges_toward_truth(self, tiny_setting):
        """With structured skills, gold scoring reduces record error."""
        rng = np.random.default_rng(0)
        roomy = tiny_setting.with_population(n_workers=60, n_tasks=8)
        base = generate_worker_population(roomy, seed=1)
        ability = rng.uniform(0.55, 0.9, size=base.n_workers)
        skills = np.clip(
            ability[:, None] + rng.normal(0, 0.04, size=base.skills.shape),
            0.5, 0.99,
        )
        from repro.mcs.workers import WorkerPool

        pool = WorkerPool(skills=skills, bundles=base.bundles, costs=base.costs)
        sim = MCSSimulation(
            platform=Platform(DPHSRCAuction(epsilon=0.5)),
            pool=pool,
            epsilon_per_round=0.5,
            error_threshold_range=tiny_setting.error_threshold_range,
            price_grid=tiny_setting.price_grid(),
            c_min=tiny_setting.c_min,
            c_max=tiny_setting.c_max,
            estimate_skills=True,
            skill_estimator="gold",
            gold_fraction=1.0,
        )
        records = sim.run(12, seed=2)
        # The record must have been updated and, restricted to workers the
        # platform actually observed (who have real gold history), the
        # estimated ability must correlate positively with the truth.
        assert not np.array_equal(sim.skill_record, pool.skills)
        observed = ~np.isclose(sim.skill_record, pool.skills).all(axis=1)
        assert observed.sum() >= 5
        est_ability = sim.skill_record[observed].mean(axis=1)
        true_ability = pool.skills[observed].mean(axis=1)
        corr = np.corrcoef(est_ability, true_ability)[0, 1]
        assert corr > 0.2

    def test_unknown_estimator_rejected(self, tiny_setting):
        pool = generate_worker_population(tiny_setting, seed=0)
        with pytest.raises(ValueError, match="skill_estimator"):
            MCSSimulation(
                platform=Platform(DPHSRCAuction(epsilon=0.5)),
                pool=pool,
                epsilon_per_round=0.5,
                error_threshold_range=tiny_setting.error_threshold_range,
                price_grid=tiny_setting.price_grid(),
                c_min=tiny_setting.c_min,
                c_max=tiny_setting.c_max,
                skill_estimator="astrology",
            )

    def test_bad_gold_fraction_rejected(self, tiny_setting):
        pool = generate_worker_population(tiny_setting, seed=0)
        with pytest.raises(ValueError, match="gold_fraction"):
            MCSSimulation(
                platform=Platform(DPHSRCAuction(epsilon=0.5)),
                pool=pool,
                epsilon_per_round=0.5,
                error_threshold_range=tiny_setting.error_threshold_range,
                price_grid=tiny_setting.price_grid(),
                c_min=tiny_setting.c_min,
                c_max=tiny_setting.c_max,
                gold_fraction=0.0,
            )
