"""The resumable greedy API: GreedyState and budget-masked runs.

The sweep engine solves every affordable-worker group of a price sweep
as a budget-masked restriction of the *full* instance problem through
one shared :class:`GreedyState`.  The contract is that a masked run is
bit-for-bit identical to slicing the problem down to the (sorted) masked
rows and running the plain greedy — same selections, mapped back to
original indices — for boolean masks, index arrays, and reused states.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import seeded_cover_problem
from repro.coverage.greedy import GreedyState, greedy_cover
from repro.coverage.problem import CoverProblem
from repro.exceptions import InfeasibleError


def sliced_selection(problem, candidates):
    """Plain greedy on the row-sliced sub-problem, mapped to original ids."""
    sub = CoverProblem(gains=problem.gains[candidates], demands=problem.demands)
    local = greedy_cover(sub).selection
    return np.sort(candidates[local])


def feasible_masks(problem, rng, n_masks=6):
    """Random candidate subsets that keep the problem coverable."""
    masks = []
    for _ in range(n_masks * 4):
        keep = rng.random(problem.n_items) < rng.uniform(0.5, 1.0)
        candidates = np.flatnonzero(keep)
        coverage = problem.gains[candidates].sum(axis=0)
        if np.all(coverage >= problem.demands):
            masks.append(candidates)
        if len(masks) == n_masks:
            break
    assert masks, "seeded workload produced no feasible mask"
    return masks


class TestMaskedEqualsSliced:
    @given(seed=st.integers(0, 40))
    @settings(max_examples=20, deadline=None)
    def test_index_mask_matches_sliced_subproblem(self, seed):
        problem = seeded_cover_problem(40, 10, seed=seed)
        rng = np.random.default_rng(seed)
        for candidates in feasible_masks(problem, rng):
            masked = greedy_cover(problem, budget_mask=candidates).selection
            assert np.array_equal(masked, sliced_selection(problem, candidates))

    def test_boolean_mask_equals_index_mask(self):
        problem = seeded_cover_problem(30, 8, seed=3)
        [candidates] = feasible_masks(problem, np.random.default_rng(3), n_masks=1)
        as_bool = np.zeros(30, dtype=bool)
        as_bool[candidates] = True
        assert np.array_equal(
            greedy_cover(problem, budget_mask=candidates).selection,
            greedy_cover(problem, budget_mask=as_bool).selection,
        )

    def test_no_mask_equals_full_mask(self):
        problem = seeded_cover_problem(25, 6, seed=9)
        assert np.array_equal(
            greedy_cover(problem).selection,
            greedy_cover(problem, budget_mask=np.arange(25)).selection,
        )


class TestStateReuse:
    def test_one_state_solves_many_masks_identically(self):
        problem = seeded_cover_problem(40, 10, seed=17)
        rng = np.random.default_rng(17)
        state = GreedyState(problem)
        for candidates in feasible_masks(problem, rng):
            assert np.array_equal(
                state.solve(budget_mask=candidates).selection,
                sliced_selection(problem, candidates),
            )

    def test_state_is_not_consumed_by_a_run(self):
        problem = seeded_cover_problem(30, 8, seed=21)
        state = GreedyState(problem)
        first = state.solve()
        second = state.solve()
        assert np.array_equal(first.selection, second.selection)
        assert first.order == second.order

    def test_state_for_a_different_problem_is_rejected(self):
        a = seeded_cover_problem(20, 5, seed=1)
        b = seeded_cover_problem(20, 5, seed=2)
        with pytest.raises(ValueError, match="different CoverProblem"):
            greedy_cover(a, state=GreedyState(b))

    def test_trivial_problem_selects_nothing(self):
        problem = CoverProblem(gains=np.ones((4, 3)), demands=np.zeros(3))
        result = GreedyState(problem).solve(budget_mask=np.array([2]))
        assert result.selection.size == 0 and result.order == ()


class TestMaskValidation:
    def test_wrong_shape_boolean_mask_raises(self):
        problem = seeded_cover_problem(20, 5, seed=4)
        with pytest.raises(ValueError, match="budget_mask"):
            greedy_cover(problem, budget_mask=np.ones(19, dtype=bool))

    def test_empty_mask_is_infeasible(self):
        problem = seeded_cover_problem(20, 5, seed=4)
        with pytest.raises(InfeasibleError):
            greedy_cover(problem, budget_mask=np.array([], dtype=int))

    def test_insufficient_mask_is_infeasible(self):
        problem = seeded_cover_problem(40, 10, seed=6)
        # A single row cannot meet demands sized for ~30% of total gain.
        with pytest.raises(InfeasibleError):
            greedy_cover(problem, budget_mask=np.array([0]))
