"""Tests for the extension experiments (fast modes)."""

import math

import numpy as np
import pytest


class TestPriceOfPrivacy:
    def test_runs_and_shows_the_leak(self, experiment_cache):
        result = experiment_cache("price_of_privacy")
        dp_eps = result.column("dp empirical eps")
        th_eps = result.column("threshold empirical eps")
        # DP-hSRC's distinguishability is bounded by its budget.
        assert all(e <= 0.1 + 1e-9 for e in dp_eps)
        # The deterministic mechanism leaks completely on at least one trial
        # (or, rarely, every defined neighbor left its payments unchanged).
        defined = [e for e in th_eps if not math.isnan(e)]
        assert any(math.isinf(e) for e in defined) or all(e == 0.0 for e in defined)


class TestDPVariants:
    def test_permute_flip_never_loses(self, experiment_cache):
        result = experiment_cache("dp_variants")
        improvements = result.column("improvement")
        # Monte-Carlo noise allowance: small negatives only.
        assert all(imp >= -30.0 for imp in improvements)

    def test_epsilon_column_sorted(self, experiment_cache):
        result = experiment_cache("dp_variants")
        eps = result.column("epsilon")
        assert eps == sorted(eps)


class TestApproximation:
    def test_measured_ratio_inside_envelope(self, experiment_cache):
        result = experiment_cache("approximation")
        for row in result.rows:
            dp_ratio = row[result.headers.index("dp_hsrc ratio")]
            envelope = row[result.headers.index("theorem6 / R_OPT")]
            # A timed-out (uncertified) optimal is an upper bound on R_OPT,
            # which can push the measured ratio marginally below 1.
            assert 0.95 <= dp_ratio <= envelope

    def test_dp_beats_baseline(self, experiment_cache):
        result = experiment_cache("approximation")
        dp = result.column("dp_hsrc ratio")
        base = result.column("baseline ratio")
        assert np.mean(dp) <= np.mean(base) + 0.05


class TestAccuracy:
    def test_demands_met_and_targets_beaten(self, experiment_cache):
        result = experiment_cache("accuracy")
        for row in result.rows:
            met = row[result.headers.index("tasks meeting demand")]
            accuracy = row[result.headers.index("weighted accuracy")]
            target = row[result.headers.index("mean 1-delta target")]
            assert met == pytest.approx(1.0)
            # Realized accuracy should beat the announced floor on average.
            assert accuracy >= target - 0.05


class TestAblationSensitivity:
    def test_guarantee_holds_at_and_above_true_sensitivity(self, experiment_cache):
        result = experiment_cache("ablation_sensitivity")
        for row in result.rows:
            factor = row[result.headers.index("factor x N*c_max")]
            if factor >= 1.0:
                assert row[result.headers.index("guarantee")] == "OK"

    def test_payment_monotone_in_factor(self, experiment_cache):
        """Bigger denominators flatten the distribution -> higher payments."""
        result = experiment_cache("ablation_sensitivity")
        payments = result.column("E[payment]")
        assert payments == sorted(payments)


class TestBudgetSchedule:
    def test_payment_rises_as_budget_splits(self, experiment_cache):
        result = experiment_cache("budget_schedule")
        basic = [
            row for row in result.rows
            if row[result.headers.index("accounting")] == "basic"
        ]
        per_round = [row[result.headers.index("E[payment]/round")] for row in basic]
        assert per_round == sorted(per_round)

    def test_larger_per_round_epsilon_never_pays_more(self, experiment_cache):
        """Whichever accounting grants more eps per round pays no more.

        (Advanced composition grants *less* than basic for small round
        counts and more for large ones — the payment ordering must track
        the eps ordering either way.)
        """
        result = experiment_cache("budget_schedule")
        eps_col = result.headers.index("eps per round")
        pay_col = result.headers.index("E[payment]/round")
        by_rounds: dict = {}
        for row in result.rows:
            by_rounds.setdefault(row[result.headers.index("rounds")], []).append(row)
        for rows in by_rounds.values():
            if len(rows) == 2:
                more_eps, less_eps = sorted(rows, key=lambda r: -r[eps_col])
                assert more_eps[pay_col] <= less_eps[pay_col] + 0.1
