"""Unit tests for repro.privacy.selection (permute-and-flip)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.privacy.exponential import ExponentialMechanism
from repro.privacy.selection import (
    permute_and_flip_pmf_exact,
    permute_and_flip_pmf_monte_carlo,
    permute_and_flip_sample,
)


class TestExactPMF:
    def test_single_candidate(self):
        pmf = permute_and_flip_pmf_exact(np.array([3.0]), 1.0, 1.0)
        assert pmf.tolist() == [1.0]

    def test_normalizes(self):
        pmf = permute_and_flip_pmf_exact(np.array([0.0, 1.0, 2.0]), 1.0, 1.0)
        assert pmf.sum() == pytest.approx(1.0)

    def test_equal_scores_uniform(self):
        pmf = permute_and_flip_pmf_exact(np.zeros(4), 2.0, 1.0)
        assert np.allclose(pmf, 0.25)

    def test_best_candidate_most_likely(self):
        pmf = permute_and_flip_pmf_exact(np.array([0.0, 5.0]), 1.0, 1.0)
        assert pmf[1] > pmf[0]

    def test_two_candidate_closed_form(self):
        # With scores (s_max, s), q = exp(eps*(s - s_max)/2): order (max, other):
        # max accepted immediately (prob 1). Order (other, max): other wins
        # w.p. q else max.  P(other) = q/2.
        eps, sens = 1.0, 1.0
        scores = np.array([0.0, 2.0])
        q = np.exp(eps * (0.0 - 2.0) / (2 * sens))
        pmf = permute_and_flip_pmf_exact(scores, eps, sens)
        assert pmf[0] == pytest.approx(q / 2)
        assert pmf[1] == pytest.approx(1 - q / 2)

    def test_large_support_rejected(self):
        with pytest.raises(ValidationError, match="factorial"):
            permute_and_flip_pmf_exact(np.zeros(10), 1.0, 1.0)


class TestSampler:
    def test_matches_exact_pmf(self):
        scores = np.array([0.0, 1.0, 3.0])
        exact = permute_and_flip_pmf_exact(scores, 1.0, 1.0)
        rng = np.random.default_rng(0)
        draws = np.array(
            [permute_and_flip_sample(scores, 1.0, 1.0, rng) for _ in range(30_000)]
        )
        empirical = np.bincount(draws, minlength=3) / draws.size
        assert np.allclose(empirical, exact, atol=0.01)

    def test_always_returns_valid_index(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            idx = permute_and_flip_sample(np.array([-5.0, 0.0]), 0.1, 2.0, rng)
            assert idx in (0, 1)

    def test_reproducible(self):
        a = permute_and_flip_sample(np.array([0.0, 1.0, 2.0]), 1.0, 1.0, seed=7)
        b = permute_and_flip_sample(np.array([0.0, 1.0, 2.0]), 1.0, 1.0, seed=7)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValidationError):
            permute_and_flip_sample(np.array([]), 1.0, 1.0)
        with pytest.raises(ValidationError):
            permute_and_flip_sample(np.zeros(2), 0.0, 1.0)


class TestMonteCarloPMF:
    def test_close_to_exact(self):
        scores = np.array([0.0, 2.0, 4.0])
        exact = permute_and_flip_pmf_exact(scores, 1.0, 1.0)
        mc = permute_and_flip_pmf_monte_carlo(scores, 1.0, 1.0, n_samples=30_000, seed=2)
        assert np.allclose(mc, exact, atol=0.015)

    def test_rejects_zero_samples(self):
        with pytest.raises(ValidationError):
            permute_and_flip_pmf_monte_carlo(np.zeros(2), 1.0, 1.0, n_samples=0)


class TestDominanceOverExponential:
    def test_expected_utility_never_worse(self):
        """McKenna–Sheldon Thm 1: P&F expected score >= exp-mech's."""
        rng = np.random.default_rng(3)
        for _ in range(10):
            scores = rng.uniform(-10, 0, size=6)
            eps = float(rng.uniform(0.1, 5.0))
            pf = permute_and_flip_pmf_exact(scores, eps, 1.0)
            em = ExponentialMechanism(scores, eps, 1.0).probabilities
            assert float(pf @ scores) >= float(em @ scores) - 1e-9

    def test_dp_log_ratio_bounded_on_shifts(self):
        """The ε-DP guarantee of P&F, checked via the exact PMF."""
        rng = np.random.default_rng(4)
        eps, sens = 0.8, 1.0
        for _ in range(10):
            scores = rng.uniform(-5, 0, size=5)
            shift = rng.uniform(-sens, sens, size=5)
            p = permute_and_flip_pmf_exact(scores, eps, sens)
            q = permute_and_flip_pmf_exact(scores + shift, eps, sens)
            ratio = np.max(np.abs(np.log(p) - np.log(q)))
            assert ratio <= eps + 1e-7


class TestGumbelMax:
    def test_matches_exponential_mechanism_distribution(self):
        """The Gumbel-max trick samples the exponential mechanism exactly."""
        from repro.privacy.selection import gumbel_max_sample

        scores = np.array([-3.0, -1.0, 0.0])
        eps, sens = 2.0, 1.0
        expected = ExponentialMechanism(scores, eps, sens).probabilities
        rng = np.random.default_rng(0)
        draws = np.array(
            [gumbel_max_sample(scores, eps, sens, rng) for _ in range(40_000)]
        )
        empirical = np.bincount(draws, minlength=3) / draws.size
        assert np.allclose(empirical, expected, atol=0.01)

    def test_reproducible(self):
        from repro.privacy.selection import gumbel_max_sample

        a = gumbel_max_sample(np.array([0.0, 1.0]), 1.0, 1.0, seed=5)
        b = gumbel_max_sample(np.array([0.0, 1.0]), 1.0, 1.0, seed=5)
        assert a == b

    def test_validation(self):
        from repro.privacy.selection import gumbel_max_sample

        with pytest.raises(ValidationError):
            gumbel_max_sample(np.array([]), 1.0, 1.0)
        with pytest.raises(ValidationError):
            gumbel_max_sample(np.zeros(2), -1.0, 1.0)
