"""Unit tests for repro.mcs.platform (full sensing rounds)."""

import numpy as np
import pytest

from repro.mcs.platform import Platform
from repro.mcs.tasks import TaskSet
from repro.mechanisms.dp_hsrc import DPHSRCAuction
from repro.workloads.generator import generate_instance, generate_worker_population
from repro.utils.rng import ensure_rng


@pytest.fixture
def round_setup(tiny_setting):
    rng = ensure_rng(0)
    instance, pool = generate_instance(tiny_setting, rng)
    tasks = TaskSet.random(
        pool.n_tasks, tiny_setting.error_threshold_range, seed=rng
    )
    # Rebuild the instance against the drawn tasks' thresholds so coverage
    # demands correspond to this round.
    instance = pool.to_instance(
        error_thresholds=tasks.error_thresholds,
        price_grid=tiny_setting.price_grid(),
        c_min=tiny_setting.c_min,
        c_max=tiny_setting.c_max,
    )
    return pool, tasks, instance


class TestRunRound:
    def test_round_structure(self, round_setup):
        pool, tasks, instance = round_setup
        platform = Platform(DPHSRCAuction(epsilon=0.5))
        report = platform.run_round(pool, tasks, instance, seed=1)
        assert report.labels.shape == (pool.n_workers, pool.n_tasks)
        assert report.aggregated.shape == (pool.n_tasks,)
        assert 0.0 <= report.accuracy <= 1.0
        assert report.total_payment == report.outcome.total_payment

    def test_only_winners_label(self, round_setup):
        pool, tasks, instance = round_setup
        platform = Platform(DPHSRCAuction(epsilon=0.5))
        report = platform.run_round(pool, tasks, instance, seed=2)
        labelled_workers = set(np.flatnonzero((report.labels != 0).any(axis=1)))
        assert labelled_workers <= set(report.outcome.winners.tolist())

    def test_winners_label_their_whole_bundle(self, round_setup):
        pool, tasks, instance = round_setup
        platform = Platform(DPHSRCAuction(epsilon=0.5))
        report = platform.run_round(pool, tasks, instance, seed=3)
        for w in report.outcome.winners:
            bundle = sorted(instance.bids[int(w)].bundle)
            labelled = np.flatnonzero(report.labels[int(w)] != 0).tolist()
            assert labelled == bundle

    def test_demands_met_on_every_task(self, round_setup):
        """The winner set satisfies Lemma 1's constraint by construction."""
        pool, tasks, instance = round_setup
        platform = Platform(DPHSRCAuction(epsilon=0.5))
        report = platform.run_round(pool, tasks, instance, seed=4)
        assert bool(np.all(report.demand_met))

    def test_achieved_error_bounds_below_targets(self, round_setup):
        pool, tasks, instance = round_setup
        platform = Platform(DPHSRCAuction(epsilon=0.5))
        report = platform.run_round(pool, tasks, instance, seed=5)
        assert np.all(report.error_bounds <= tasks.error_thresholds + 1e-9)

    def test_reproducible_with_seed(self, round_setup):
        pool, tasks, instance = round_setup
        platform = Platform(DPHSRCAuction(epsilon=0.5))
        a = platform.run_round(pool, tasks, instance, seed=6)
        b = platform.run_round(pool, tasks, instance, seed=6)
        assert a.outcome.price == b.outcome.price
        assert np.array_equal(a.labels, b.labels)

    def test_aggregation_accuracy_is_reasonable(self, tiny_setting):
        """Coverage demands of δ≤0.5 should aggregate most tasks right."""
        rng = ensure_rng(7)
        roomy = tiny_setting.with_population(n_workers=50)
        accuracies = []
        for _ in range(10):
            pool = generate_worker_population(roomy, rng)
            tasks = TaskSet.random(
                pool.n_tasks, tiny_setting.error_threshold_range, seed=rng
            )
            instance = pool.to_instance(
                error_thresholds=tasks.error_thresholds,
                price_grid=tiny_setting.price_grid(),
                c_min=tiny_setting.c_min,
                c_max=tiny_setting.c_max,
            )
            platform = Platform(DPHSRCAuction(epsilon=0.5))
            report = platform.run_round(pool, tasks, instance, seed=rng)
            accuracies.append(report.accuracy)
        # Mean per-task error is bounded by mean δ (≈0.4); demand a margin.
        assert float(np.mean(accuracies)) >= 0.6
