"""Property-based tests for the privacy substrate (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.privacy.exponential import ExponentialMechanism
from repro.privacy.leakage import kl_divergence, max_log_ratio, total_variation


def score_vectors(max_len=12):
    return arrays(
        dtype=np.float64,
        shape=st.integers(1, max_len),
        elements=st.floats(-100.0, 100.0, allow_nan=False),
    )


def distributions(n):
    return arrays(
        dtype=np.float64, shape=n, elements=st.floats(0.01, 1.0)
    ).map(lambda v: v / v.sum())


class TestExponentialMechanismProperties:
    @given(scores=score_vectors(), epsilon=st.floats(0.01, 50.0))
    @settings(max_examples=80, deadline=None)
    def test_pmf_normalizes_and_is_positive(self, scores, epsilon):
        mech = ExponentialMechanism(scores, epsilon, sensitivity=10.0)
        probs = mech.probabilities
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs > 0)

    @given(scores=score_vectors(), epsilon=st.floats(0.01, 5.0))
    @settings(max_examples=80, deadline=None)
    def test_monotone_in_score(self, scores, epsilon):
        """A strictly larger score never has a smaller probability."""
        mech = ExponentialMechanism(scores, epsilon, sensitivity=10.0)
        probs = mech.probabilities
        order = np.argsort(scores)
        assert np.all(np.diff(probs[order]) >= -1e-12)

    @given(
        scores=score_vectors(),
        epsilon=st.floats(0.05, 5.0),
        sensitivity=st.floats(0.5, 20.0),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_dp_guarantee_under_bounded_shift(self, scores, epsilon, sensitivity, data):
        """Any per-score shift bounded by the sensitivity keeps the
        log-probability change within ε — the defining DP property."""
        shift = data.draw(
            arrays(
                dtype=np.float64,
                shape=scores.shape,
                elements=st.floats(-1.0, 1.0),
            )
        )
        a = ExponentialMechanism(scores, epsilon, sensitivity)
        b = ExponentialMechanism(scores + shift * sensitivity, epsilon, sensitivity)
        diff = np.abs(a.log_probabilities - b.log_probabilities)
        assert float(np.max(diff)) <= epsilon + 1e-7


class TestDivergenceProperties:
    @given(data=st.data(), n=st.integers(2, 10))
    @settings(max_examples=80, deadline=None)
    def test_kl_nonnegative_and_zero_iff_equal(self, data, n):
        p = data.draw(distributions(n))
        q = data.draw(distributions(n))
        kl = kl_divergence(p, q)
        # The Bregman-form evaluation is pointwise non-negative — no
        # tolerance needed, and identical inputs give exactly zero.
        assert kl >= 0.0
        assert kl_divergence(p, p) == 0.0

    @given(data=st.data(), n=st.integers(2, 10))
    @settings(max_examples=80, deadline=None)
    def test_tv_symmetric_and_bounded(self, data, n):
        p = data.draw(distributions(n))
        q = data.draw(distributions(n))
        tv = total_variation(p, q)
        assert 0.0 <= tv <= 1.0
        assert tv == pytest.approx(total_variation(q, p))

    @given(data=st.data(), n=st.integers(2, 10))
    @settings(max_examples=80, deadline=None)
    def test_pinsker_inequality(self, data, n):
        """TV ≤ sqrt(KL/2) — a nontrivial cross-check of both measures."""
        p = data.draw(distributions(n))
        q = data.draw(distributions(n))
        tv = total_variation(p, q)
        kl = kl_divergence(p, q)
        assert tv <= np.sqrt(kl / 2.0) + 1e-9

    @given(data=st.data(), n=st.integers(2, 10))
    @settings(max_examples=80, deadline=None)
    def test_max_log_ratio_dominates_kl(self, data, n):
        """KL(P||Q) ≤ max-divergence — pure DP implies bounded KL leakage."""
        p = data.draw(distributions(n))
        q = data.draw(distributions(n))
        assert kl_divergence(p, q) <= max_log_ratio(p, q) + 1e-9
