"""Unit tests for repro.utils.stats."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.stats import bootstrap_ci, mean_confidence_interval


class TestMeanCI:
    def test_contains_mean(self):
        est = mean_confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert est.low <= est.estimate <= est.high
        assert est.estimate == pytest.approx(2.5)
        assert est.n == 4

    def test_single_observation_degenerates(self):
        est = mean_confidence_interval([7.0])
        assert est.low == est.high == est.estimate == 7.0

    def test_zero_variance_zero_width(self):
        est = mean_confidence_interval([3.0, 3.0, 3.0])
        assert est.half_width == pytest.approx(0.0)

    def test_higher_confidence_wider(self):
        data = [1.0, 2.0, 4.0, 8.0, 16.0]
        narrow = mean_confidence_interval(data, confidence=0.5)
        wide = mean_confidence_interval(data, confidence=0.99)
        assert wide.half_width > narrow.half_width

    def test_coverage_simulation(self):
        """~95% of 95% intervals should contain the true mean."""
        rng = np.random.default_rng(0)
        hits = 0
        trials = 400
        for _ in range(trials):
            sample = rng.normal(10.0, 2.0, size=15)
            est = mean_confidence_interval(sample, confidence=0.95)
            hits += est.low <= 10.0 <= est.high
        assert hits / trials == pytest.approx(0.95, abs=0.04)

    def test_validation(self):
        with pytest.raises(ValidationError):
            mean_confidence_interval([])
        with pytest.raises(ValidationError):
            mean_confidence_interval([1.0], confidence=1.5)


class TestBootstrapCI:
    def test_contains_point_estimate(self):
        rng = np.random.default_rng(1)
        data = rng.exponential(2.0, size=40)
        est = bootstrap_ci(data, seed=2)
        assert est.low <= est.estimate <= est.high

    def test_custom_statistic(self):
        data = [1.0, 2.0, 3.0, 100.0]
        est = bootstrap_ci(data, statistic=np.median, seed=3)
        assert est.estimate == pytest.approx(2.5)

    def test_reproducible(self):
        data = list(range(20))
        a = bootstrap_ci(data, seed=4)
        b = bootstrap_ci(data, seed=4)
        assert (a.low, a.high) == (b.low, b.high)

    def test_single_observation(self):
        est = bootstrap_ci([5.0], seed=0)
        assert est.low == est.high == 5.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            bootstrap_ci([], seed=0)
        with pytest.raises(ValidationError):
            bootstrap_ci([1.0, 2.0], n_resamples=0, seed=0)
