"""Unit tests for repro.mcs.tasks."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mcs.tasks import TaskSet


class TestConstruction:
    def test_basic(self):
        ts = TaskSet(
            true_labels=np.array([1, -1]), error_thresholds=np.array([0.1, 0.2])
        )
        assert ts.n_tasks == 2

    def test_invalid_labels_rejected(self):
        with pytest.raises(ValidationError, match="\\+1 and -1"):
            TaskSet(np.array([1, 0]), np.array([0.1, 0.1]))

    def test_threshold_shape_mismatch(self):
        with pytest.raises(ValidationError, match="per task"):
            TaskSet(np.array([1, -1]), np.array([0.1]))

    @pytest.mark.parametrize("bad", [0.0, 1.0])
    def test_thresholds_open_interval(self, bad):
        with pytest.raises(ValidationError):
            TaskSet(np.array([1]), np.array([bad]))

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            TaskSet(np.array([], dtype=int), np.array([]))

    def test_immutable(self):
        ts = TaskSet(np.array([1]), np.array([0.1]))
        with pytest.raises(ValueError):
            ts.true_labels[0] = -1


class TestCoverageDemands:
    def test_lemma1_values(self):
        ts = TaskSet(np.array([1, -1]), np.array([0.1, 0.2]))
        demands = ts.coverage_demands()
        assert demands[0] == pytest.approx(2 * np.log(10))
        assert demands[1] == pytest.approx(2 * np.log(5))


class TestRandom:
    def test_shapes_and_ranges(self):
        ts = TaskSet.random(50, (0.1, 0.2), seed=0)
        assert ts.n_tasks == 50
        assert np.all(np.isin(ts.true_labels, (-1, 1)))
        assert np.all((0.1 <= ts.error_thresholds) & (ts.error_thresholds <= 0.2))

    def test_reproducible(self):
        a = TaskSet.random(10, (0.1, 0.2), seed=1)
        b = TaskSet.random(10, (0.1, 0.2), seed=1)
        assert np.array_equal(a.true_labels, b.true_labels)

    def test_both_labels_appear_eventually(self):
        ts = TaskSet.random(200, (0.1, 0.2), seed=2)
        assert (ts.true_labels == 1).any() and (ts.true_labels == -1).any()

    def test_bad_count_rejected(self):
        with pytest.raises(ValidationError):
            TaskSet.random(0, (0.1, 0.2))
