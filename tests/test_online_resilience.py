"""Checkpoint/resume resilience for the online mechanisms.

The headline contract: kill a checkpointed run at **every** stage
boundary (via :class:`~repro.resilience.faults.FaultPlan` crash
injection), resume from the durable file, and the final outcome is
bit-identical to an uninterrupted run — for both the deterministic and
the DP mechanism (whose per-stage randomness is keyed by stage index,
not RNG state).
"""

import pytest

from repro.exceptions import CheckpointError
from repro.mechanisms.online import (
    DPOnlineThresholdMechanism,
    OnlineState,
    OnlineThresholdMechanism,
    run_checkpointed,
)
from repro.resilience.checkpoint import SweepCheckpoint
from repro.resilience.faults import (
    FaultPlan,
    SimulatedCrashError,
    TransientFaultError,
)
from repro.workloads import OnlineArrivalStream, generate_instance
from repro.workloads.settings import SimulationSetting

SETTING = SimulationSetting(
    name="online-res",
    epsilon=0.5,
    c_min=1.0,
    c_max=10.0,
    bundle_size=(3, 5),
    skill_range=(0.3, 0.95),
    error_threshold_range=(0.3, 0.5),
    n_workers=40,
    n_tasks=6,
    price_range=(4.0, 10.0),
    grid_step=0.5,
)

N_STAGES = 3


@pytest.fixture(scope="module")
def stream():
    instance, _pool = generate_instance(SETTING, seed=5)
    return OnlineArrivalStream(instance, order="uniform", seed=11)


@pytest.fixture(params=["plain", "dp"])
def mechanism(request):
    if request.param == "plain":
        return OnlineThresholdMechanism(budget=120.0, n_stages=N_STAGES)
    return DPOnlineThresholdMechanism(
        budget=120.0, epsilon=0.9, n_stages=N_STAGES, record_ledger=False
    )


class TestKillAndResume:
    def test_fresh_checkpointed_run_matches_serial(self, mechanism, stream, tmp_path):
        baseline = mechanism.run(stream, seed=7)
        resumed = run_checkpointed(
            mechanism, stream, tmp_path / "ck.jsonl", seed=7
        )
        assert resumed == baseline

    @pytest.mark.parametrize("kill_stage", range(N_STAGES))
    def test_kill_at_every_stage_boundary_resumes_bit_identical(
        self, mechanism, stream, tmp_path, kill_stage
    ):
        baseline = mechanism.run(stream, seed=7)
        path = tmp_path / "ck.jsonl"
        with pytest.raises(SimulatedCrashError):
            run_checkpointed(
                mechanism,
                stream,
                path,
                seed=7,
                fault_plan=FaultPlan.parse(f"crash@{kill_stage}"),
            )
        resumed = run_checkpointed(mechanism, stream, path, seed=7)
        assert resumed == baseline

    def test_resume_from_completed_file_replays_exactly(
        self, mechanism, stream, tmp_path
    ):
        path = tmp_path / "ck.jsonl"
        first = run_checkpointed(mechanism, stream, path, seed=7)
        again = run_checkpointed(mechanism, stream, path, seed=7)
        assert again == first

    def test_transient_fault_then_resume(self, mechanism, stream, tmp_path):
        path = tmp_path / "ck.jsonl"
        with pytest.raises(TransientFaultError):
            run_checkpointed(
                mechanism,
                stream,
                path,
                seed=7,
                fault_plan=FaultPlan.parse("transient@1"),
            )
        resumed = run_checkpointed(mechanism, stream, path, seed=7)
        assert resumed == mechanism.run(stream, seed=7)


class TestCheckpointHygiene:
    def test_stage_records_carry_state_schema(self, stream, tmp_path):
        path = tmp_path / "ck.jsonl"
        mechanism = OnlineThresholdMechanism(budget=120.0, n_stages=N_STAGES)
        run_checkpointed(mechanism, stream, path, seed=7)
        records = SweepCheckpoint(path).load()
        assert set(records) == {f"stage:{s}" for s in range(N_STAGES)}
        for record in records.values():
            OnlineState.from_payload(record["payload"])  # round-trips

    def test_torn_tail_is_repaired_on_resume(self, stream, tmp_path):
        path = tmp_path / "ck.jsonl"
        mechanism = OnlineThresholdMechanism(budget=120.0, n_stages=N_STAGES)
        baseline = mechanism.run(stream, seed=7)
        with pytest.raises(SimulatedCrashError):
            run_checkpointed(
                mechanism, stream, path, seed=7,
                fault_plan=FaultPlan.parse(f"crash@{N_STAGES - 1}"),
            )
        with path.open("a") as handle:
            handle.write('{"type": "point", "key": "stage:9", "payl')
        resumed = run_checkpointed(mechanism, stream, path, seed=7)
        assert resumed == baseline

    def test_different_seed_refuses_resume(self, stream, tmp_path):
        path = tmp_path / "ck.jsonl"
        mechanism = DPOnlineThresholdMechanism(
            budget=120.0, epsilon=0.9, n_stages=N_STAGES, record_ledger=False
        )
        run_checkpointed(mechanism, stream, path, seed=7)
        with pytest.raises(CheckpointError, match="seed"):
            run_checkpointed(mechanism, stream, path, seed=8)

    def test_different_stream_refuses_resume(self, stream, tmp_path):
        path = tmp_path / "ck.jsonl"
        mechanism = OnlineThresholdMechanism(budget=120.0, n_stages=N_STAGES)
        run_checkpointed(mechanism, stream, path, seed=7)
        other = OnlineArrivalStream(stream.instance, order="uniform", seed=12)
        with pytest.raises(CheckpointError, match="stream"):
            run_checkpointed(mechanism, other, path, seed=7)

    def test_different_budget_refuses_resume(self, stream, tmp_path):
        path = tmp_path / "ck.jsonl"
        run_checkpointed(
            OnlineThresholdMechanism(budget=120.0, n_stages=N_STAGES),
            stream, path, seed=7,
        )
        with pytest.raises(CheckpointError, match="budget"):
            run_checkpointed(
                OnlineThresholdMechanism(budget=90.0, n_stages=N_STAGES),
                stream, path, seed=7,
            )
