"""Unit tests for repro.aggregation.dawid_skene."""

import numpy as np
import pytest

from repro.aggregation.dawid_skene import dawid_skene
from repro.exceptions import ValidationError
from repro.mcs.sensing import collect_labels


def planted_labels(n_workers=12, n_tasks=60, seed=0, skill_low=0.55, skill_high=0.95):
    """Labels drawn from the DS generative model with known skills."""
    rng = np.random.default_rng(seed)
    truth = rng.choice((-1, 1), size=n_tasks)
    skills = rng.uniform(skill_low, skill_high, size=(n_workers, 1)) * np.ones(
        (1, n_tasks)
    )
    assignments = np.ones((n_workers, n_tasks), dtype=bool)
    labels = collect_labels(skills, truth, assignments, seed=rng)
    return labels, truth, skills[:, 0]


class TestRecovery:
    def test_recovers_planted_truth(self):
        labels, truth, _skills = planted_labels()
        result = dawid_skene(labels)
        accuracy = np.mean(result.labels == truth)
        assert accuracy >= 0.95

    def test_skill_estimates_correlate_with_truth(self):
        labels, _truth, skills = planted_labels(n_tasks=200, seed=1)
        result = dawid_skene(labels)
        corr = np.corrcoef(result.worker_skills, skills)[0, 1]
        assert corr > 0.8

    def test_beats_majority_with_skew(self):
        # Two experts, ten noisy workers: DS should out-infer majority.
        rng = np.random.default_rng(2)
        truth = rng.choice((-1, 1), size=120)
        skills = np.concatenate([np.full(2, 0.97), np.full(10, 0.55)])
        skill_matrix = skills[:, None] * np.ones((1, 120))
        labels = collect_labels(
            skill_matrix, truth, np.ones_like(skill_matrix, dtype=bool), seed=rng
        )
        from repro.aggregation.majority import majority_vote

        ds_acc = np.mean(dawid_skene(labels).labels == truth)
        mv_acc = np.mean(majority_vote(labels) == truth)
        assert ds_acc >= mv_acc


class TestInterface:
    def test_posterior_shape_and_range(self):
        labels, *_ = planted_labels(n_workers=5, n_tasks=20)
        result = dawid_skene(labels)
        assert result.posterior_positive.shape == (20,)
        assert np.all((0 < result.posterior_positive) & (result.posterior_positive < 1))

    def test_skill_matrix_broadcast(self):
        labels, *_ = planted_labels(n_workers=5, n_tasks=20)
        result = dawid_skene(labels)
        matrix = result.skill_matrix(n_tasks=7)
        assert matrix.shape == (5, 7)
        assert np.allclose(matrix[:, 0], matrix[:, 6])

    def test_partial_labelling_supported(self):
        labels, *_ = planted_labels(n_workers=8, n_tasks=40, seed=3)
        mask = np.random.default_rng(4).random(labels.shape) < 0.5
        sparse = np.where(mask, labels, 0)
        # Keep only tasks that still have labels.
        covered = (sparse != 0).any(axis=0)
        result = dawid_skene(sparse[:, covered])
        assert result.posterior_positive.shape == (int(covered.sum()),)

    def test_reports_iterations_and_loglik(self):
        labels, *_ = planted_labels(n_workers=5, n_tasks=20)
        result = dawid_skene(labels)
        assert result.n_iterations >= 1
        assert np.isfinite(result.log_likelihood)


class TestValidation:
    def test_rejects_1d(self):
        with pytest.raises(ValidationError, match="2-D"):
            dawid_skene(np.array([1, -1]))

    def test_rejects_invalid_values(self):
        with pytest.raises(ValidationError, match="-1, 0"):
            dawid_skene(np.array([[2, 1]]))

    def test_rejects_unlabelled_task(self):
        with pytest.raises(ValidationError, match="at least one label"):
            dawid_skene(np.array([[1, 0], [1, 0]]))


class TestConvergenceFlag:
    def test_converged_on_easy_data(self):
        labels, *_ = planted_labels(n_workers=8, n_tasks=40)
        assert dawid_skene(labels).converged

    def test_iteration_cap_returns_best_iterate(self):
        """A one-iteration cap cannot converge but must still return."""
        labels, truth, _ = planted_labels(n_workers=10, n_tasks=60, seed=5)
        result = dawid_skene(labels, max_iterations=1)
        assert not result.converged
        assert result.n_iterations == 1
        assert result.posterior_positive.shape == (60,)
