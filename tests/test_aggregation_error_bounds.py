"""Unit tests for repro.aggregation.error_bounds (Lemma 1 arithmetic)."""

import numpy as np
import pytest

from repro.aggregation.error_bounds import (
    achieved_error_bound,
    coverage_demands,
    quality_matrix,
    required_coverage,
)
from repro.exceptions import ValidationError


class TestQualityMatrix:
    def test_formula(self):
        q = quality_matrix(np.array([[0.9, 0.5, 0.1]]))
        assert q[0].tolist() == [
            pytest.approx(0.64),
            pytest.approx(0.0),
            pytest.approx(0.64),
        ]

    def test_random_guesser_is_worthless(self):
        assert quality_matrix(np.array([[0.5]]))[0, 0] == 0.0

    def test_perfect_and_antiperfect_equal(self):
        q = quality_matrix(np.array([[1.0, 0.0]]))
        assert q[0, 0] == q[0, 1] == 1.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            quality_matrix(np.array([[1.1]]))

    def test_output_in_unit_interval(self, rng):
        q = quality_matrix(rng.uniform(0, 1, (5, 5)))
        assert np.all((0 <= q) & (q <= 1))


class TestRequiredCoverage:
    def test_formula(self):
        assert required_coverage(0.1) == pytest.approx(2 * np.log(10))

    def test_looser_bound_needs_less(self):
        assert required_coverage(0.4) < required_coverage(0.1)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_non_open_interval(self, bad):
        with pytest.raises(ValidationError):
            required_coverage(bad)


class TestCoverageDemands:
    def test_vectorized(self):
        demands = coverage_demands([0.1, 0.2])
        assert demands[0] == pytest.approx(required_coverage(0.1))
        assert demands[1] == pytest.approx(required_coverage(0.2))

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            coverage_demands([])

    def test_bad_element_rejected(self):
        with pytest.raises(ValidationError):
            coverage_demands([0.1, 1.0])


class TestAchievedErrorBound:
    def test_inverts_required_coverage(self):
        delta = 0.15
        assert achieved_error_bound(required_coverage(delta)) == pytest.approx(delta)

    def test_zero_coverage_is_vacuous(self):
        assert achieved_error_bound(0.0) == 1.0

    def test_scalar_returns_float(self):
        assert isinstance(achieved_error_bound(1.0), float)

    def test_array_returns_array(self):
        out = achieved_error_bound(np.array([0.0, 2 * np.log(10)]))
        assert isinstance(out, np.ndarray)
        assert out[1] == pytest.approx(0.1)

    def test_negative_coverage_rejected(self):
        with pytest.raises(ValidationError):
            achieved_error_bound(-1.0)
