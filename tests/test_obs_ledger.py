"""Unit tests for the privacy-budget ledger (repro.obs.ledger)."""

import pytest

from repro.exceptions import BudgetExceededError, ValidationError
from repro.obs import LedgerEntry, PrivacyLedger
from repro.privacy.composition import PrivacyAccountant


class TestRecord:
    def test_sequential_draws_add(self):
        ledger = PrivacyLedger()
        assert ledger.record("dp-hsrc", epsilon=0.1, sensitivity=500.0) == pytest.approx(0.1)
        assert ledger.record("dp-hsrc", epsilon=0.2, sensitivity=500.0) == pytest.approx(0.3)
        assert ledger.total_epsilon == pytest.approx(0.3)
        assert ledger.sequential_epsilon == pytest.approx(0.3)
        assert ledger.parallel_epsilon == 0.0
        assert len(ledger) == 2

    def test_parallel_draws_cost_only_their_max(self):
        ledger = PrivacyLedger()
        ledger.record("a", epsilon=0.5, sensitivity=1.0, parallel=True)
        ledger.record("b", epsilon=0.3, sensitivity=1.0, parallel=True)
        ledger.record("c", epsilon=0.1, sensitivity=1.0)
        assert ledger.parallel_epsilon == pytest.approx(0.5)
        assert ledger.total_epsilon == pytest.approx(0.6)

    def test_entries_keep_mechanism_and_attrs(self):
        ledger = PrivacyLedger()
        ledger.record("dp-hsrc", epsilon=0.1, sensitivity=30.0, support_size=7)
        entry = ledger.entries[0]
        assert isinstance(entry, LedgerEntry)
        assert entry.mechanism == "dp-hsrc"
        assert entry.composition == "sequential"
        assert entry.attrs == {"support_size": 7}
        assert entry.to_json_obj()["type"] == "ledger"

    @pytest.mark.parametrize("eps", [0.0, -1.0])
    def test_nonpositive_epsilon_rejected(self, eps):
        with pytest.raises(ValidationError, match="epsilon"):
            PrivacyLedger().record("m", epsilon=eps, sensitivity=1.0)

    def test_nonpositive_sensitivity_rejected(self):
        with pytest.raises(ValidationError, match="sensitivity"):
            PrivacyLedger().record("m", epsilon=0.1, sensitivity=0.0)

    def test_discarding_ledger_keeps_nothing(self):
        ledger = PrivacyLedger(keep=False)
        assert ledger.record("m", epsilon=1.0, sensitivity=1.0) == 0.0
        assert len(ledger) == 0
        assert ledger.total_epsilon == 0.0


class TestBudget:
    def test_budget_exceeded_raises_and_retains_the_entry(self):
        ledger = PrivacyLedger(budget=0.5)
        ledger.record("m", epsilon=0.4, sensitivity=1.0)
        with pytest.raises(BudgetExceededError, match="past the configured"):
            ledger.record("m", epsilon=0.2, sensitivity=1.0)
        # The audit trail must show the overspend.
        assert len(ledger) == 2
        assert ledger.total_epsilon == pytest.approx(0.6)
        assert ledger.remaining == 0.0

    def test_exact_budget_is_within(self):
        ledger = PrivacyLedger(budget=0.5)
        ledger.record("m", epsilon=0.5, sensitivity=1.0)
        assert ledger.assert_within_budget() == pytest.approx(0.5)
        assert ledger.remaining == pytest.approx(0.0)

    def test_assert_within_explicit_budget(self):
        ledger = PrivacyLedger()
        ledger.record("m", epsilon=0.7, sensitivity=1.0)
        assert ledger.assert_within_budget(1.0) == pytest.approx(0.7)
        with pytest.raises(BudgetExceededError, match="exceeds the budget"):
            ledger.assert_within_budget(0.5)

    def test_assert_without_any_budget_is_an_error(self):
        with pytest.raises(ValueError, match="no budget"):
            PrivacyLedger().assert_within_budget()

    def test_bad_budget_rejected(self):
        with pytest.raises(ValidationError, match="budget"):
            PrivacyLedger(budget=-1.0)

    def test_remaining_is_none_when_unbudgeted(self):
        assert PrivacyLedger().remaining is None


class TestAmbientStoreForwarding:
    def test_store_overspend_retains_the_local_entry(self):
        from repro.privacy.budget import InMemoryBudgetStore, use_budget_store

        store = InMemoryBudgetStore(limit=0.5)
        ledger = PrivacyLedger()
        with use_budget_store(store, tenant="acme"):
            ledger.record("m", epsilon=0.4, sensitivity=1.0)
            with pytest.raises(BudgetExceededError, match="acme"):
                ledger.record("m", epsilon=0.2, sensitivity=1.0)
        # Both sides keep the violating expenditure, so the run's trace
        # and the budget account agree on the overspending draw.
        assert len(ledger) == 2
        assert ledger.total_epsilon == pytest.approx(0.6)
        assert store.spent("acme") == pytest.approx(0.6)

    def test_store_overspend_raises_even_for_non_keeping_ledger(self):
        from repro.privacy.budget import InMemoryBudgetStore, use_budget_store

        store = InMemoryBudgetStore(limit=0.5)
        ledger = PrivacyLedger(keep=False)
        with use_budget_store(store, tenant="acme"):
            ledger.record("m", epsilon=0.4, sensitivity=1.0)
            with pytest.raises(BudgetExceededError):
                ledger.record("m", epsilon=0.2, sensitivity=1.0)
        assert len(ledger) == 0
        assert store.spent("acme") == pytest.approx(0.6)


class TestAccountantBridge:
    def test_composition_matches_privacy_accountant(self):
        """The ledger and the accountant apply identical pure-DP rules."""
        ledger = PrivacyLedger()
        ledger.record("a", epsilon=0.1, sensitivity=1.0)
        ledger.record("b", epsilon=0.25, sensitivity=2.0, parallel=True)
        ledger.record("c", epsilon=0.05, sensitivity=1.0)
        ledger.record("d", epsilon=0.4, sensitivity=3.0, parallel=True)
        accountant = ledger.to_accountant()
        assert isinstance(accountant, PrivacyAccountant)
        assert accountant.spent == pytest.approx(ledger.total_epsilon)

    def test_bridge_carries_the_budget(self):
        ledger = PrivacyLedger(budget=2.0)
        ledger.record("m", epsilon=0.5, sensitivity=1.0)
        assert ledger.to_accountant().budget == 2.0


class TestSnapshotMerge:
    def test_snapshot_round_trips(self):
        src = PrivacyLedger(budget=5.0)
        src.record("a", epsilon=0.1, sensitivity=1.0, n_workers=10)
        src.record("b", epsilon=0.2, sensitivity=2.0, parallel=True)
        dst = PrivacyLedger(budget=5.0)
        dst.merge_snapshot(src.snapshot())
        assert dst.snapshot() == src.snapshot()
        assert dst.total_epsilon == pytest.approx(src.total_epsilon)

    def test_merge_appends_in_order(self):
        sink = PrivacyLedger()
        for name in ("first", "second"):
            part = PrivacyLedger()
            part.record(name, epsilon=0.1, sensitivity=1.0)
            sink.merge(part)
        assert [e.mechanism for e in sink.entries] == ["first", "second"]
        assert sink.total_epsilon == pytest.approx(0.2)

    def test_merge_keeps_the_sinks_budget(self):
        sink = PrivacyLedger(budget=1.0)
        part = PrivacyLedger(budget=99.0)
        part.record("m", epsilon=0.5, sensitivity=1.0)
        sink.merge(part)
        assert sink.budget == 1.0

    def test_discarding_ledger_ignores_merges(self):
        part = PrivacyLedger()
        part.record("m", epsilon=0.5, sensitivity=1.0)
        sink = PrivacyLedger(keep=False)
        sink.merge(part)
        assert len(sink) == 0
