"""Unit tests for advanced composition (repro.privacy.composition)."""

import math

import pytest

from repro.privacy.composition import advanced_composition_epsilon


class TestAdvancedComposition:
    def test_formula(self):
        e0, k, d = 0.1, 100, 1e-6
        expected = e0 * math.sqrt(2 * k * math.log(1 / d)) + k * e0 * (
            math.exp(e0) - 1
        )
        assert advanced_composition_epsilon(e0, k, d) == pytest.approx(expected)

    def test_beats_basic_composition_for_long_campaigns(self):
        """sqrt(k) scaling: advanced < basic once k is large enough."""
        e0, d = 0.05, 1e-9
        k = 2000
        basic = e0 * k
        assert advanced_composition_epsilon(e0, k, d) < basic

    def test_single_round_close_to_epsilon(self):
        # One round: ε' = ε0·sqrt(2 ln(1/δ)) + ε0(e^{ε0}−1) — larger than
        # ε0 (the sqrt term), so advanced composition only helps for many
        # rounds.
        out = advanced_composition_epsilon(0.1, 1, 1e-6)
        assert out > 0.1

    def test_monotone_in_rounds(self):
        values = [
            advanced_composition_epsilon(0.1, k, 1e-6) for k in (1, 10, 100, 1000)
        ]
        assert values == sorted(values)

    def test_monotone_in_delta_slack(self):
        loose = advanced_composition_epsilon(0.1, 100, 1e-2)
        tight = advanced_composition_epsilon(0.1, 100, 1e-12)
        assert tight > loose

    @pytest.mark.parametrize("bad_delta", [0.0, 1.0, -0.1, 2.0])
    def test_rejects_bad_delta(self, bad_delta):
        with pytest.raises(ValueError):
            advanced_composition_epsilon(0.1, 10, bad_delta)

    def test_rejects_bad_rounds(self):
        with pytest.raises(ValueError):
            advanced_composition_epsilon(0.1, 0, 1e-6)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(Exception):
            advanced_composition_epsilon(0.0, 10, 1e-6)
