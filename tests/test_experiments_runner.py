"""Tests for the shared experiment plumbing (runner, figure driver)."""

import pytest

from repro.experiments.figure_payment import run_payment_figure
from repro.experiments.runner import payment_sweep_point
from repro.mechanisms.baseline import BaselineAuction
from repro.mechanisms.dp_hsrc import DPHSRCAuction


class TestPaymentSweepPoint:
    def test_returns_stats_per_mechanism(self, tiny_setting):
        mechanisms = {
            "dp": DPHSRCAuction(epsilon=tiny_setting.epsilon),
            "base": BaselineAuction(epsilon=tiny_setting.epsilon),
        }
        stats = payment_sweep_point(
            tiny_setting, mechanisms, n_price_samples=500, seed=0
        )
        assert set(stats) == {"dp", "base"}
        assert stats["dp"].mean > 0
        assert stats["dp"].n_samples == 500

    def test_seed_determinism(self, tiny_setting):
        mechanisms = {"dp": DPHSRCAuction(epsilon=0.5)}
        a = payment_sweep_point(tiny_setting, mechanisms, n_price_samples=200, seed=3)
        b = payment_sweep_point(tiny_setting, mechanisms, n_price_samples=200, seed=3)
        assert a["dp"].mean == b["dp"].mean

    def test_population_overrides(self, tiny_setting):
        mechanisms = {"dp": DPHSRCAuction(epsilon=0.5)}
        stats = payment_sweep_point(
            tiny_setting, mechanisms, n_workers=40, n_price_samples=100, seed=1
        )
        assert stats["dp"].mean > 0


class TestRunPaymentFigure:
    def test_rejects_bad_axis(self, tiny_setting):
        with pytest.raises(ValueError, match="sweep_axis"):
            run_payment_figure(
                name="x",
                title="t",
                setting=tiny_setting,
                sweep_axis="price",
                sweep_values=[10],
                include_optimal=False,
            )

    def test_minimal_sweep(self, tiny_setting):
        result = run_payment_figure(
            name="mini",
            title="mini sweep",
            setting=tiny_setting,
            sweep_axis="workers",
            sweep_values=[25, 35],
            include_optimal=False,
            n_price_samples=200,
            seed=0,
        )
        assert len(result.rows) == 2
        assert result.headers[0] == "worker count"
        assert "dp_hsrc mean" in result.headers
        assert "optimal mean" not in result.headers

    def test_optimal_included_when_requested(self, tiny_setting):
        result = run_payment_figure(
            name="mini-opt",
            title="mini sweep with optimal",
            setting=tiny_setting,
            sweep_axis="tasks",
            sweep_values=[6],
            include_optimal=True,
            n_price_samples=100,
            seed=0,
            optimal_time_limit=30.0,
        )
        assert "optimal mean" in result.headers
        row = result.rows[0]
        assert row[result.headers.index("optimal mean")] <= (
            row[result.headers.index("dp_hsrc mean")] * 1.001
        )


class TestDriverRepetitions:
    def test_repetitions_note_and_aggregation(self, tiny_setting):
        """n_repetitions > 1 switches to across-instance statistics."""
        result = run_payment_figure(
            name="reps",
            title="reps",
            setting=tiny_setting,
            sweep_axis="workers",
            sweep_values=[30],
            include_optimal=False,
            n_price_samples=100,
            seed=0,
            n_repetitions=3,
        )
        assert any("across-3-instance" in note for note in result.notes)

    def test_driver_signature_accepts_repetitions(self):
        """All four figure drivers expose the knob."""
        import inspect

        from repro.experiments import figure1, figure2, figure3, figure4

        for module in (figure1, figure2, figure3, figure4):
            assert "n_repetitions" in inspect.signature(module.run).parameters
