"""Property-based round-trip tests for repro.io (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import io as repro_io
from repro.auction.bids import Bid, BidProfile
from repro.auction.instance import AuctionInstance
from repro.auction.outcome import AuctionOutcome
from repro.mcs.workers import WorkerPool


@st.composite
def instances(draw):
    n = draw(st.integers(1, 6))
    k = draw(st.integers(1, 4))
    quality = draw(
        arrays(np.float64, (n, k), elements=st.floats(0.0, 1.0, allow_nan=False))
    )
    demands = draw(
        arrays(np.float64, (k,), elements=st.floats(0.0, 3.0, allow_nan=False))
    )
    bids = []
    for _ in range(n):
        size = draw(st.integers(1, k))
        bundle = draw(
            st.lists(st.integers(0, k - 1), min_size=size, max_size=size)
        )
        price = draw(st.floats(0.5, 9.5, allow_nan=False))
        bids.append(Bid(bundle, round(price, 4)))
    grid = sorted(
        set(draw(st.lists(st.floats(1.0, 10.0), min_size=1, max_size=5)))
    )
    return AuctionInstance(
        bids=BidProfile(bids),
        quality=quality,
        demands=demands,
        price_grid=np.round(np.asarray(grid), 6),
        c_min=0.5,
        c_max=10.0,
    )


@st.composite
def outcomes(draw):
    n = draw(st.integers(1, 8))
    winners = draw(
        st.lists(st.integers(0, n - 1), unique=True, max_size=n)
    )
    price = round(draw(st.floats(0.0, 50.0, allow_nan=False)), 6)
    return AuctionOutcome(winners=winners, price=price, n_workers=n)


class TestRoundTripProperties:
    @given(instance=instances())
    @settings(max_examples=40, deadline=None)
    def test_instance_round_trip_is_identity(self, instance, tmp_path_factory):
        payload = repro_io.instance_to_dict(instance)
        restored = repro_io.instance_from_dict(payload)
        assert restored.bids == instance.bids
        assert np.array_equal(restored.quality, instance.quality)
        assert np.array_equal(restored.demands, instance.demands)
        assert np.array_equal(restored.price_grid, instance.price_grid)

    @given(outcome=outcomes())
    @settings(max_examples=40, deadline=None)
    def test_outcome_round_trip_is_identity(self, outcome):
        restored = repro_io.outcome_from_dict(repro_io.outcome_to_dict(outcome))
        assert np.array_equal(restored.winners, outcome.winners)
        assert restored.price == outcome.price
        assert np.array_equal(restored.payments, outcome.payments)

    @given(outcome=outcomes())
    @settings(max_examples=40, deadline=None)
    def test_round_trip_preserves_total_payment(self, outcome):
        restored = repro_io.outcome_from_dict(repro_io.outcome_to_dict(outcome))
        assert restored.total_payment == outcome.total_payment
