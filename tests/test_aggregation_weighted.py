"""Unit tests for repro.aggregation.weighted and .majority."""

import numpy as np
import pytest

from repro.aggregation.majority import majority_vote
from repro.aggregation.weighted import weighted_aggregate, weighted_scores
from repro.exceptions import ValidationError


class TestWeightedScores:
    def test_single_confident_worker(self):
        labels = np.array([[1]])
        skills = np.array([[0.9]])
        assert weighted_scores(labels, skills)[0] == pytest.approx(0.8)

    def test_below_half_skill_gets_negative_weight(self):
        # A θ=0.1 worker's +1 vote *counts against* +1.
        labels = np.array([[1]])
        skills = np.array([[0.1]])
        assert weighted_scores(labels, skills)[0] == pytest.approx(-0.8)

    def test_missing_labels_contribute_nothing(self):
        labels = np.array([[1], [0]])
        skills = np.array([[0.9], [0.9]])
        assert weighted_scores(labels, skills)[0] == pytest.approx(0.8)

    def test_opposing_votes_cancel_by_weight(self):
        labels = np.array([[1], [-1]])
        skills = np.array([[0.8], [0.8]])
        assert weighted_scores(labels, skills)[0] == pytest.approx(0.0)

    def test_invalid_label_value_rejected(self):
        with pytest.raises(ValidationError, match="-1, 0"):
            weighted_scores(np.array([[2]]), np.array([[0.9]]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="match"):
            weighted_scores(np.array([[1]]), np.array([[0.9, 0.8]]))


class TestWeightedAggregate:
    def test_stronger_worker_wins_disagreement(self):
        labels = np.array([[1], [-1]])
        skills = np.array([[0.9], [0.6]])
        assert weighted_aggregate(labels, skills)[0] == 1

    def test_tie_resolution(self):
        labels = np.array([[0]])
        skills = np.array([[0.9]])
        assert weighted_aggregate(labels, skills, tie_value=-1)[0] == -1
        assert weighted_aggregate(labels, skills, tie_value=1)[0] == 1

    def test_bad_tie_value_rejected(self):
        with pytest.raises(ValidationError, match="tie_value"):
            weighted_aggregate(np.array([[1]]), np.array([[0.9]]), tie_value=0)

    def test_output_always_pm_one(self, rng):
        labels = rng.choice([-1, 0, 1], size=(6, 10))
        skills = rng.uniform(0, 1, (6, 10))
        out = weighted_aggregate(labels, skills)
        assert np.all(np.isin(out, (-1, 1)))


class TestMajorityVote:
    def test_simple_majority(self):
        labels = np.array([[1], [1], [-1]])
        assert majority_vote(labels)[0] == 1

    def test_ignores_missing(self):
        labels = np.array([[1], [0], [0]])
        assert majority_vote(labels)[0] == 1

    def test_tie_goes_to_tie_value(self):
        labels = np.array([[1], [-1]])
        assert majority_vote(labels, tie_value=-1)[0] == -1

    def test_invalid_values_rejected(self):
        with pytest.raises(ValidationError):
            majority_vote(np.array([[3]]))

    def test_weighting_beats_majority_with_skilled_minority(self):
        """The reason the platform weights: one expert vs two guessers."""
        from repro.aggregation.weighted import weighted_aggregate

        labels = np.array([[1], [-1], [-1]])
        skills = np.array([[0.99], [0.52], [0.52]])
        assert majority_vote(labels)[0] == -1
        assert weighted_aggregate(labels, skills)[0] == 1
