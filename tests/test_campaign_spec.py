"""Tests for the declarative campaign spec layer and cell-kind registry."""

import pytest

from repro.campaign import (
    CAMPAIGN_SPEC_SCHEMA,
    CELL_KINDS,
    CampaignSpec,
    CellSpec,
    PRESETS,
    build_preset,
    get_cell_kind,
    register_cell_kind,
)
from repro.campaign.cells import CellKind
from repro.exceptions import ValidationError


class TestCellSpec:
    def test_knobs_canonicalized(self):
        cell = CellSpec(name="c", kind="experiment", knobs={"b": 2, "a": (1, 2)})
        # JSON round-trip at construction: tuples become lists, order fixed.
        assert cell.knobs == {"a": [1, 2], "b": 2}

    def test_tenant_defaults_to_name(self):
        assert CellSpec(name="c", kind="experiment").resolved_tenant == "c"
        assert (
            CellSpec(name="c", kind="experiment", tenant="t").resolved_tenant == "t"
        )

    def test_name_doubles_as_directory(self):
        with pytest.raises(ValidationError):
            CellSpec(name="../escape", kind="experiment")
        with pytest.raises(ValidationError):
            CellSpec(name="", kind="experiment")
        CellSpec(name="ok-1.cell_x", kind="experiment")  # allowed characters

    def test_payload_round_trip(self):
        cell = CellSpec(
            name="c", kind="online_stream", knobs={"orders": ["bursty"]}, tenant="t"
        )
        assert CellSpec.from_payload(cell.to_payload()) == cell

    def test_unknown_payload_keys_rejected(self):
        payload = CellSpec(name="c", kind="experiment").to_payload()
        payload["mystery"] = 1
        with pytest.raises(ValidationError, match="mystery"):
            CellSpec.from_payload(payload)


class TestCampaignSpec:
    def test_duplicate_cell_names_rejected(self):
        cells = (
            CellSpec(name="c", kind="experiment"),
            CellSpec(name="c", kind="experiment"),
        )
        with pytest.raises(ValidationError, match="duplicate"):
            CampaignSpec(name="x", cells=cells)

    def test_needs_at_least_one_cell(self):
        with pytest.raises(ValidationError):
            CampaignSpec(name="x", cells=())

    def test_payload_round_trip_and_schema(self):
        spec = build_preset("smoke")
        payload = spec.to_payload()
        assert payload["schema"] == CAMPAIGN_SPEC_SCHEMA
        assert CampaignSpec.from_payload(payload) == spec

    def test_wrong_schema_rejected(self):
        payload = build_preset("smoke").to_payload()
        payload["schema"] = "something-else/9"
        with pytest.raises(ValidationError, match="schema"):
            CampaignSpec.from_payload(payload)

    def test_fingerprint_tracks_content(self):
        a = build_preset("smoke", seed=0)
        b = build_preset("smoke", seed=1)
        assert a.fingerprint() == build_preset("smoke", seed=0).fingerprint()
        assert a.fingerprint() != b.fingerprint()

    def test_cell_lookup(self):
        spec = build_preset("smoke")
        assert spec.cell("table1").kind == "experiment"
        with pytest.raises(ValidationError):
            spec.cell("nope")


class TestCellKindRegistry:
    def test_builtin_kinds_registered(self):
        for kind in ("experiment", "payment_figure", "uncertain_tasks", "online_stream"):
            assert get_cell_kind(kind).name == kind

    def test_unknown_kind_lists_available(self):
        with pytest.raises(ValidationError, match="experiment"):
            get_cell_kind("warp_drive")

    def test_duplicate_registration_rejected(self):
        kind = next(iter(CELL_KINDS))
        with pytest.raises(ValidationError, match="already registered"):
            register_cell_kind(CellKind(name=kind, summary="dup", runner=lambda c, x: None))

    def test_custom_kind_registers_and_unregisters(self):
        name = "test_only_kind"
        register_cell_kind(
            CellKind(name=name, summary="for this test", runner=lambda c, x: None)
        )
        try:
            assert get_cell_kind(name).summary == "for this test"
        finally:
            del CELL_KINDS[name]


class TestPresets:
    def test_known_presets(self):
        assert set(PRESETS) == {"smoke", "paper", "zoo"}

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValidationError, match="available"):
            build_preset("banquet")

    def test_paper_preset_covers_registry(self):
        from repro.experiments import EXPERIMENTS

        spec = build_preset("paper")
        assert tuple(c.name for c in spec.cells) == EXPERIMENTS
        assert all(c.kind == "experiment" for c in spec.cells)

    def test_every_preset_cell_kind_resolves(self):
        for name in PRESETS:
            for cell in build_preset(name).cells:
                get_cell_kind(cell.kind)
