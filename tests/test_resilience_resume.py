"""Kill-and-resume golden tests: checkpointed sweeps replay bit-identically.

The contract: a sweep killed mid-run (here: a planned crash) leaves a
durable seed-keyed checkpoint; re-running the same command completes the
remaining points and the merged results, metrics, and privacy-ledger
trail are *identical* to an uninterrupted run.  ``resilience.*``
counters are excluded from the metrics comparison — they record the
execution's history (checkpoint hits, failures), which legitimately
differs between an interrupted and a clean run; everything the pipeline
itself recorded must match exactly.
"""

import numpy as np
import pytest

from repro.exceptions import CheckpointError, InstanceExecutionError
from repro.experiments.figure_payment import run_payment_figure
from repro.mechanisms.dp_hsrc import DPHSRCAuction
from repro.obs import MetricsRecorder
from repro.resilience import (
    CHECKPOINT_SCHEMA,
    FaultPlan,
    ResilienceConfig,
    SweepCheckpoint,
    seed_fingerprint,
    use_resilience,
)
from repro.experiments.runner import payment_sweep, sweep_checkpoint
from repro.workloads import SETTING_I

N_POINTS = 10
POINTS = [(None, 3 + i) for i in range(N_POINTS)]
MECHS = {"dp_hsrc": DPHSRCAuction(epsilon=0.1)}
SWEEP_KWARGS = dict(n_price_samples=100, seed=42)


def _golden():
    recorder = MetricsRecorder()
    results = payment_sweep(
        SETTING_I, MECHS, POINTS, recorder=recorder, **SWEEP_KWARGS
    )
    return results, recorder


def _pipeline_counters(recorder):
    return {
        name: value
        for name, value in recorder.counters.items()
        if not name.startswith("resilience.")
    }


class TestSeedFingerprint:
    def test_children_have_unique_fingerprints(self):
        children = np.random.SeedSequence(42).spawn(64)
        keys = {seed_fingerprint(child) for child in children}
        assert len(keys) == 64

    def test_fingerprint_is_stable_across_spawns(self):
        """Position i keeps its key when the sweep grows — resume-safe."""
        short = np.random.SeedSequence(42).spawn(5)
        long = np.random.SeedSequence(42).spawn(9)
        for a, b in zip(short, long):
            assert seed_fingerprint(a) == seed_fingerprint(b)


class TestSweepResume:
    def test_kill_and_resume_is_bit_identical(self, tmp_path):
        golden_results, golden_rec = _golden()

        ckpt = sweep_checkpoint(
            tmp_path, 42, n_points=N_POINTS, n_price_samples=100
        )
        # The "kill": a planned crash at point 6 aborts the sweep after
        # durably checkpointing everything that completed before it.
        with pytest.raises(InstanceExecutionError) as info:
            payment_sweep(
                SETTING_I,
                MECHS,
                POINTS,
                checkpoint=ckpt,
                fault_plan=FaultPlan.parse("crash@6"),
                recorder=MetricsRecorder(),
                **SWEEP_KWARGS,
            )
        assert info.value.index == 6
        completed = ckpt.load()
        assert 0 < len(completed) < N_POINTS

        # The resume: same command, no fault. Cached points replay from
        # the checkpoint, fresh points re-run from their original seeds.
        resumed_rec = MetricsRecorder()
        resumed = payment_sweep(
            SETTING_I, MECHS, POINTS, checkpoint=ckpt, recorder=resumed_rec, **SWEEP_KWARGS
        )
        assert resumed == golden_results
        assert _pipeline_counters(resumed_rec) == _pipeline_counters(golden_rec)
        assert resumed_rec.histograms == golden_rec.histograms
        assert resumed_rec.ledger.entries == golden_rec.ledger.entries
        assert [(s.kind, s.name) for s in resumed_rec.spans] == [
            (s.kind, s.name) for s in golden_rec.spans
        ]
        # The resumed run did hit the checkpoint for the completed prefix.
        assert resumed_rec.counters["resilience.checkpoint.hits"] == len(completed)

    def test_completed_checkpoint_skips_all_work(self, tmp_path):
        golden_results, _ = _golden()
        ckpt = sweep_checkpoint(tmp_path, 42, n_points=N_POINTS, n_price_samples=100)
        payment_sweep(SETTING_I, MECHS, POINTS, checkpoint=ckpt, **SWEEP_KWARGS)
        rec = MetricsRecorder()
        replayed = payment_sweep(
            SETTING_I, MECHS, POINTS, checkpoint=ckpt, recorder=rec, **SWEEP_KWARGS
        )
        assert replayed == golden_results
        assert rec.counters["resilience.checkpoint.hits"] == N_POINTS
        assert "resilience.checkpoint.writes" not in rec.counters

    def test_ambient_checkpoint_dir(self, tmp_path):
        """The CLI's --resume flag reaches payment_sweep via the ambient config."""
        golden_results, _ = _golden()
        config = ResilienceConfig(checkpoint_dir=tmp_path)
        with use_resilience(config):
            first = payment_sweep(SETTING_I, MECHS, POINTS, **SWEEP_KWARGS)
            second = payment_sweep(SETTING_I, MECHS, POINTS, **SWEEP_KWARGS)
        assert first == golden_results == second
        assert list(tmp_path.glob("payment_sweep-*.jsonl"))


class TestCheckpointFile:
    def test_schema_header_and_round_trip(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        ckpt = SweepCheckpoint(path, context={"sweep": "t"})
        ckpt.append("7:0", {"x": 1.5}, index=0)
        ckpt.append("7:1", {"x": 2.5}, index=1)
        lines = path.read_text().splitlines()
        assert f'"schema": "{CHECKPOINT_SCHEMA}"' in lines[0]
        loaded = SweepCheckpoint(path, context={"sweep": "t"}).load()
        assert loaded["7:1"]["payload"] == {"x": 2.5}

    def test_float_payloads_round_trip_exactly(self, tmp_path):
        """repr-based JSON keeps doubles bit-exact — the resume invariant."""
        value = float(np.random.default_rng(0).random() * 1e-7)
        ckpt = SweepCheckpoint(tmp_path / "ck.jsonl")
        ckpt.append("k", {"v": value})
        assert ckpt.load()["k"]["payload"]["v"] == value

    def test_context_mismatch_refuses_resume(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        SweepCheckpoint(path, context={"n_points": 10}).append("k", 1)
        with pytest.raises(CheckpointError, match="n_points"):
            SweepCheckpoint(path, context={"n_points": 20}).load()

    def test_torn_final_line_is_discarded(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        ckpt = SweepCheckpoint(path)
        ckpt.append("a", 1)
        ckpt.append("b", 2)
        with path.open("a") as handle:
            handle.write('{"type": "point", "key": "c", "payl')  # killed mid-write
        loaded = SweepCheckpoint(path).load()
        assert set(loaded) == {"a", "b"}

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        ckpt = SweepCheckpoint(path)
        ckpt.append("a", 1)
        with path.open("a") as handle:
            handle.write("not json\n")
        ckpt.append("b", 2)
        with pytest.raises(CheckpointError, match="not valid JSON"):
            SweepCheckpoint(path).load()

    def test_missing_file_loads_empty(self, tmp_path):
        assert SweepCheckpoint(tmp_path / "absent.jsonl").load() == {}

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        path.write_text('{"type": "meta", "schema": "repro-checkpoint/99"}\n')
        with pytest.raises(CheckpointError, match="schema"):
            SweepCheckpoint(path).load()


class TestFigureResume:
    """The Figure 1–4 driver resumes per (point, repetition) unit."""

    FIG_KWARGS = dict(
        name="figtest",
        title="resume test figure",
        setting=SETTING_I,
        sweep_axis="tasks",
        sweep_values=[3, 4],
        include_optimal=False,
        n_price_samples=50,
        seed=0,
        n_repetitions=2,
    )

    def test_crash_then_resume_reproduces_rows(self, tmp_path):
        golden = run_payment_figure(**self.FIG_KWARGS)
        chaos = ResilienceConfig(
            fault_plan=FaultPlan.parse("crash@2"), checkpoint_dir=tmp_path
        )
        with use_resilience(chaos):
            with pytest.raises(InstanceExecutionError) as info:
                run_payment_figure(**self.FIG_KWARGS)
        assert info.value.index == 2
        with use_resilience(ResilienceConfig(checkpoint_dir=tmp_path)):
            resumed = run_payment_figure(**self.FIG_KWARGS)
        assert resumed.rows == golden.rows
        assert resumed.headers == golden.headers

    def test_transient_fault_recovers_identically(self):
        from repro.resilience import RetryPolicy

        golden = run_payment_figure(**self.FIG_KWARGS)
        chaos = ResilienceConfig(
            retry=RetryPolicy(max_retries=1, base_delay=0.0, max_delay=0.0),
            fault_plan=FaultPlan.parse("transient@1:1"),
        )
        with use_resilience(chaos):
            recovered = run_payment_figure(**self.FIG_KWARGS)
        assert recovered.rows == golden.rows
