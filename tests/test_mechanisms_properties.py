"""Unit tests for repro.mechanisms.properties (Theorems 3 and 6 arithmetic)."""

import numpy as np
import pytest

from repro.mechanisms.dp_hsrc import DPHSRCAuction
from repro.mechanisms.optimal import optimal_total_payment
from repro.mechanisms.properties import (
    payment_sensitivity,
    theorem6_payment_bound,
    truthfulness_gap,
)
from repro.workloads.generator import generate_instance


class TestTruthfulnessGap:
    def test_formula(self):
        assert truthfulness_gap(0.1, 10.0, 60.0) == pytest.approx(5.0)

    def test_zero_spread_gives_zero_gap(self):
        assert truthfulness_gap(0.1, 5.0, 5.0) == 0.0

    def test_rejects_inverted_costs(self):
        with pytest.raises(ValueError, match="c_min"):
            truthfulness_gap(0.1, 10.0, 5.0)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(Exception):
            truthfulness_gap(0.0, 1.0, 2.0)


class TestPaymentSensitivity:
    def test_formula(self):
        assert payment_sensitivity(100, 60.0) == 6000.0

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            payment_sensitivity(0, 60.0)


class TestTheorem6Bound:
    def test_bound_holds_on_random_instances(self, tiny_setting):
        """E[R] ≤ 2βH_m·R_OPT + (6N·c_max/ε)·ln(...) must hold empirically."""
        for seed in range(3):
            instance, _ = generate_instance(tiny_setting, seed=seed)
            epsilon = tiny_setting.epsilon
            expected = DPHSRCAuction(epsilon).price_pmf(instance).expected_total_payment()
            r_opt = optimal_total_payment(instance).total_payment
            bound = theorem6_payment_bound(
                instance, epsilon, r_opt, unit=tiny_setting.grid_step
            )
            assert expected <= bound + 1e-6

    def test_bound_decreases_with_epsilon(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=0)
        r_opt = optimal_total_payment(instance).total_payment
        loose = theorem6_payment_bound(instance, 0.01, r_opt, unit=0.5)
        tight = theorem6_payment_bound(instance, 10.0, r_opt, unit=0.5)
        assert tight < loose

    def test_requires_positive_r_opt(self, tiny_setting):
        instance, _ = generate_instance(tiny_setting, seed=0)
        with pytest.raises(Exception):
            theorem6_payment_bound(instance, 0.1, 0.0, unit=0.5)

    def test_rejects_zero_c_min(self, tiny_setting):
        from repro.auction.instance import AuctionInstance

        instance, _ = generate_instance(tiny_setting, seed=0)
        free_market = AuctionInstance(
            bids=instance.bids,
            quality=instance.quality,
            demands=instance.demands,
            price_grid=instance.price_grid,
            c_min=0.0,
            c_max=instance.c_max,
        )
        with pytest.raises(ValueError, match="c_min"):
            theorem6_payment_bound(free_market, 0.1, 100.0, unit=0.5)
