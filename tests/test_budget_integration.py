"""End-to-end budget-subsystem tests: ledger forwarding, mechanism
admission, multi-tenant batches, the forced-serial sweep, and the CLI.

The two load-bearing invariants:

* **No store configured → nothing changes.**  The ambient default is the
  null scope, so every golden suite in the repo exercises this; here we
  additionally pin that an *active but unlimited* store leaves outcomes
  bit-identical (charging is observation, never perturbation).
* **Degrade isolates tenants.**  An exhausted tenant falls back to the
  baseline mechanism mid-batch while every other tenant's DP-hSRC
  outcome stays bit-for-bit equal to a no-budget run.
"""

import numpy as np
import pytest

from repro.bench import BatchAuctionRunner, seeded_auction_batch
from repro.cli import main
from repro.exceptions import BudgetExceededError
from repro.mechanisms.dp_hsrc import DPHSRCAuction
from repro.obs import MetricsRecorder, PrivacyLedger, use_recorder
from repro.privacy.budget import (
    InMemoryBudgetStore,
    JsonlBudgetStore,
    use_budget_store,
)


class TestLedgerForwarding:
    def test_record_charges_the_ambient_account(self):
        store = InMemoryBudgetStore()
        ledger = PrivacyLedger()
        with use_budget_store(store, tenant="acme", principal="eu"):
            ledger.record("dp-hsrc", epsilon=0.25, sensitivity=10.0)
            ledger.record("dp-hsrc", epsilon=0.5, sensitivity=10.0, parallel=True)
        acct = store.account("acme", "eu")
        assert acct.sequential_epsilon == pytest.approx(0.25)
        assert acct.parallel_epsilon == pytest.approx(0.5)
        # The per-run view is unchanged by the forwarding.
        assert ledger.total_epsilon == pytest.approx(0.75)

    def test_non_keeping_ledger_still_forwards(self):
        """Budget enforcement must not depend on observability being on."""
        store = InMemoryBudgetStore()
        ledger = PrivacyLedger(keep=False)
        with use_budget_store(store, tenant="acme"):
            ledger.record("dp-hsrc", epsilon=0.25, sensitivity=10.0)
        assert len(ledger) == 0
        assert store.spent("acme") == pytest.approx(0.25)

    def test_merge_snapshot_never_double_charges(self):
        """Merged entries were charged by the process that recorded them
        live; merging must not charge them again."""
        store = InMemoryBudgetStore()
        source = PrivacyLedger()
        source.record("dp-hsrc", epsilon=0.25, sensitivity=10.0)
        target = PrivacyLedger()
        with use_budget_store(store, tenant="acme"):
            target.merge_snapshot(source.snapshot())
        assert target.total_epsilon == pytest.approx(0.25)
        assert store.spent("acme") == 0.0

    def test_store_limit_enforced_through_the_ledger(self):
        store = InMemoryBudgetStore(limit=0.4)
        ledger = PrivacyLedger()
        with use_budget_store(store, tenant="acme"):
            ledger.record("dp-hsrc", epsilon=0.25, sensitivity=10.0)
            with pytest.raises(BudgetExceededError, match="'acme'"):
                ledger.record("dp-hsrc", epsilon=0.25, sensitivity=10.0)


class TestOutcomeInvariance:
    def test_unlimited_store_leaves_outcomes_bit_identical(self):
        instances = seeded_auction_batch(4, n_workers=20, n_tasks=4, seed=5)
        runner = BatchAuctionRunner(DPHSRCAuction(epsilon=0.5), backend="serial")
        golden = runner.run(instances, seed=11)
        store = InMemoryBudgetStore()  # active, but unlimited
        with use_budget_store(store, tenant="acme"):
            budgeted = runner.run(instances, seed=11)
        assert np.array_equal(golden.prices(), budgeted.prices())
        assert all(not outcome.degraded for outcome in budgeted.outcomes)
        # ...and the spend was fully accounted while doing so.
        assert store.account("acme", "default").n_charges == 4

    def test_budget_active_forces_the_serial_backend(self):
        instances = seeded_auction_batch(4, n_workers=15, n_tasks=3, seed=2)
        runner = BatchAuctionRunner(
            DPHSRCAuction(epsilon=0.5), backend="process", max_workers=2
        )
        with use_budget_store(InMemoryBudgetStore()):
            result = runner.run(instances, seed=1)
        assert result.backend == "serial"
        assert result.max_workers == 1

    def test_tenants_length_is_validated(self):
        instances = seeded_auction_batch(2, n_workers=15, n_tasks=3, seed=2)
        runner = BatchAuctionRunner(DPHSRCAuction(epsilon=0.5), backend="serial")
        with pytest.raises(ValueError, match="tenants has length"):
            runner.run(instances, seed=1, tenants=["only-one"])


class TestMultiTenantBatch:
    TENANTS = ["rich", "poor", "rich", "poor"]

    def _batch(self):
        return seeded_auction_batch(4, n_workers=20, n_tasks=4, seed=9)

    def test_degrade_isolates_the_exhausted_tenant(self):
        instances = self._batch()
        runner = BatchAuctionRunner(DPHSRCAuction(epsilon=0.5), backend="serial")
        golden = runner.run(instances, seed=13)

        store = InMemoryBudgetStore(limits={"rich": None, "poor": 0.5})
        with use_budget_store(store, on_exhausted="degrade"):
            result = runner.run(instances, seed=13, tenants=self.TENANTS)

        flags = [outcome.degraded for outcome in result.outcomes]
        # poor affords its first draw (0.5 of 0.5) and degrades on the
        # second; rich never degrades.
        assert flags == [False, False, False, True]
        # Every non-degraded instance is bit-identical to the no-budget run.
        for i in (0, 1, 2):
            assert result.outcomes[i].price == golden.outcomes[i].price
            assert np.array_equal(
                result.outcomes[i].winners, golden.outcomes[i].winners
            )
        poor = store.account("poor", "default")
        assert poor.spent == pytest.approx(0.5)
        assert poor.degraded_epsilon == pytest.approx(0.5)
        assert store.account("rich", "default").spent == pytest.approx(1.0)

    def test_degraded_draws_are_counted(self):
        instances = self._batch()
        runner = BatchAuctionRunner(DPHSRCAuction(epsilon=0.5), backend="serial")
        recorder = MetricsRecorder()
        store = InMemoryBudgetStore(limits={"rich": None, "poor": 0.5})
        with use_recorder(recorder), use_budget_store(store, on_exhausted="degrade"):
            runner.run(instances, seed=13, tenants=self.TENANTS, recorder=recorder)
        assert recorder.counters["budget.degraded"] == 1

    def test_refuse_quarantines_only_the_exhausted_tenant(self):
        instances = self._batch()
        runner = BatchAuctionRunner(DPHSRCAuction(epsilon=0.5), backend="serial")
        store = InMemoryBudgetStore(limits={"rich": None, "poor": 0.5})
        with use_budget_store(store, on_exhausted="refuse"):
            result = runner.run(instances, seed=13, tenants=self.TENANTS)
        assert [err.index for err in result.failed] == [3]
        assert isinstance(result.failed[0].cause, BudgetExceededError)
        assert result.failed[0].cause.tenant == "poor"
        assert result.outcomes[3] is None
        assert all(result.outcomes[i] is not None for i in (0, 1, 2))


class TestSweepUnderBudget:
    def test_sweep_forces_serial_and_charges_once(self):
        from repro.experiments.runner import payment_sweep
        from repro.workloads import SETTING_I

        mechs = {"dp_hsrc": DPHSRCAuction(epsilon=0.1)}
        points = [(None, 3), (None, 4), (None, 5)]
        golden = payment_sweep(SETTING_I, mechs, points, n_price_samples=50, seed=1)
        store = InMemoryBudgetStore()
        with use_budget_store(store, tenant="acme"):
            budgeted = payment_sweep(
                SETTING_I, mechs, points, n_price_samples=50, seed=1, max_workers=4
            )
        assert budgeted == golden
        # One dp-hsrc charge per point — the pool was not used, so no
        # charge was lost to a worker process and none was duplicated.
        assert store.account("acme", "default").n_charges == len(points)


class TestCLIBudgetFlags:
    def test_budget_flags_with_journal_and_audit(self, capsys, tmp_path):
        journal = tmp_path / "budget.jsonl"
        assert main([
            "figure5", "--fast", "--budget", "50", "--budget-store", str(journal),
            "--on-exhausted", "degrade", "--metrics",
        ]) == 0
        out = capsys.readouterr().out
        assert "privacy budget audit" in out
        assert journal.exists()
        # The audit pseudo-experiment replays the journal standalone.
        assert main(["audit", "--budget-store", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "default/default" in out

    def test_budget_flags_do_not_change_the_series(self, capsys):
        main(["figure5", "--fast", "--seed", "4"])
        bare = capsys.readouterr().out
        # figure5's ε-sweep composes to ~12k, so 20000 never exhausts.
        main(["figure5", "--fast", "--seed", "4", "--budget", "20000"])
        budgeted = capsys.readouterr().out
        assert bare == budgeted

    def test_exhausted_refuse_exits_4(self, capsys):
        assert main(["figure5", "--fast", "--budget", "0.15"]) == 4
        err = capsys.readouterr().err
        assert "budget" in err
        assert "--on-exhausted degrade" in err

    def test_exhausted_degrade_completes(self, capsys):
        assert main([
            "figure5", "--fast", "--budget", "0.15", "--on-exhausted", "degrade",
        ]) == 0

    def test_audit_requires_a_store_path(self, capsys):
        assert main(["audit"]) == 2
        assert "--budget-store" in capsys.readouterr().err

    def test_audit_on_missing_journal_exits_2(self, capsys, tmp_path):
        assert main(["audit", "--budget-store", str(tmp_path / "nope.jsonl")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_journal_accumulates_across_runs(self, capsys, tmp_path):
        journal = tmp_path / "budget.jsonl"
        args = ["figure5", "--fast", "--budget-store", str(journal)]
        assert main(args) == 0
        first = JsonlBudgetStore.open_for_audit(journal).spent("default")
        assert main(args) == 0
        second = JsonlBudgetStore.open_for_audit(journal).spent("default")
        assert first > 0
        assert second == pytest.approx(2 * first)
